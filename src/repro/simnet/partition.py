"""Partitioned simulation kernel: shard the event loop across partitions.

Very large deployments (the 1000-host grid of the scale benchmarks) are
built from *clusters* joined by WAN links whose wire latency is several
milliseconds — orders of magnitude above every intra-cluster delay.  That
latency is *lookahead* in the classic conservative parallel-DES sense: an
event a partition sends across a WAN boundary at virtual time ``t`` cannot
take effect on the far side before ``t + latency``, so every partition can
safely execute a bounded window of virtual time without hearing from its
peers at all.

:class:`PartitionedSimulator` is a drop-in for
:class:`~repro.simnet.engine.Simulator` (``Simulator(partitions=N)``
constructs one).  It owns ``N`` :class:`_PartitionShard` queues — each a
full timer-wheel kernel reusing the PR 3 machinery — and runs them in
windows::

    window = [start, start + lookahead]   (inclusive of the horizon)

where ``start`` is the earliest pending event across all shards and
``lookahead`` is the minimum latency over the registered *boundary*
networks (links whose attached hosts live in different partitions; networks
self-register when a host attachment makes them span partitions).  Within a
window every shard executes independently in its own exact ``(when, seq)``
order; scheduling calls issued by executing model code always land in the
issuing shard.

Cross-partition scheduling (:meth:`Simulator.call_at_partition` — the
network layer routes every ``transmit`` completion through it) goes through
per-destination **boundary mailboxes**.  A mailbox entry is stamped
``(when, sent_at, src_partition, src_seq)`` and must satisfy
``when >= window horizon`` (violations raise :class:`LookaheadViolation`
rather than silently reordering).  At the window barrier each mailbox is
sorted by that stamp and drained into the destination shard, which defines
the deterministic total order for same-timestamp cross-partition
deliveries: earlier send time first, then lower source partition, then
source scheduling order.

Trace equality with the single-loop kernel holds event-for-event as long
as cross-partition deliveries do not tie *exactly* (same float timestamp)
with destination-local events scheduled during the same window — a
measure-zero coincidence under continuous latency models.  At such a tie
the single loop interleaves by global scheduling order, which no partition
can observe; the partitioned kernel instead applies the deterministic
mailbox rule above (the delivery runs after the destination's
locally-scheduled events of that timestamp).  Both orders are legal
executions of the model; only the partitioned one is independent of the
executor.

Executors
---------

``executor="round-robin"`` (default) steps the shards sequentially inside
one process — deterministic and dependency-free, the configuration the
trace-equality suite pins down.  ``executor="thread"`` runs each shard's
window on a worker-thread pool with a barrier per window; with mailbox
merging order-stamped (not arrival-ordered) the execution stays
deterministic *provided* partitions share no mutable Python state outside
the boundary mailboxes (per-partition counters, per-partition rngs).  CPU
parallelism is bounded by the GIL in CPython today; the thread executor
exists for GIL-releasing model code and free-threaded builds.

``executor="process"`` (:mod:`repro.simnet.procexec`) is the multi-core
configuration: one worker process per partition, each owning a full replica
of the object graph and *executing* only its own shard.  Cross-shard
traffic is the boundary-mailbox stream, wire-encoded (frame fields by
value, hosts/networks by deterministic name) and merged by the parent with
the same ``(when, sent_at, src_partition, src_seq)`` sort; the window
barrier is the pipe round-trip.  Barrier hooks, the barrier sample bus and
telemetry keep their round-robin semantics across address spaces (see the
executor module for the replication rules).

Determinism contract for scenario authors:

* every host, probe and fault schedule belongs to exactly one partition
  (``framework.boot`` / ``TopologyMonitor.watch`` / ``FaultInjector``
  handle this given ``host.partition`` / ``network.partition``);
* cross-partition interaction goes through networks whose latency is at
  least the window lookahead (the mailbox check enforces it);
* mutable state shared across partitions (a network's ``up`` flag, the
  topology KB) must only be *written* by its owning partition; reads from
  other partitions see window-granular state.  *Passive* link probes on a
  boundary network observe traffic from **both** endpoints' partitions
  (the observer fires in the transmitting shard); their samples ride the
  **barrier sample bus** (:meth:`PartitionedSimulator.publish_at_barrier`):
  shard-local buffers drained at the window barrier in a deterministic
  ``(sample time, source partition, publish order)`` merge, so boundary
  watches are executor-independent — including under the thread executor
  (no mid-window shared-estimator writes) and the process executor (every
  replica consumes the identical merged stream).
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Any, Callable, List, Optional, Tuple

from repro.simnet.engine import (
    SimEvent,
    SimStats,
    SimulationError,
    Simulator,
    TimerHandle,
)

__all__ = ["PartitionedSimulator", "LookaheadViolation", "DEFAULT_LOOKAHEAD"]

#: window width used when no boundary network is registered and no explicit
#: ``lookahead=`` was configured: well under every WAN latency in
#: :mod:`repro.simnet.networks`, comfortably above LAN/SAN delays.
DEFAULT_LOOKAHEAD = 1e-3


class LookaheadViolation(SimulationError):
    """A cross-partition event was scheduled inside the current window.

    Conservative execution is only correct when a boundary crossing lands at
    or past the window horizon; a violation means a link between partitions
    is faster than the configured lookahead (e.g. two partitions sharing a
    LAN, or a boundary WAN degraded below the window width)."""


class _PartitionShard(Simulator):
    """One partition's event queue: a full timer-wheel kernel plus the
    bookkeeping the facade needs (index, mailbox sequence counter)."""

    def __init__(self, index: int, *, wheel_width: float, wheel_buckets: int):
        super().__init__(wheel_width=wheel_width, wheel_buckets=wheel_buckets)
        self.index = index
        self._mail_seq = itertools.count()

    def next_event_time(self) -> Optional[float]:
        """Timestamp of this shard's earliest live entry, or None."""
        if self._next_ready() is not None:
            return self._now
        head = self._pull()
        return head[0] if head is not None else None


class _RoundRobinExecutor:
    """Default executor: each shard runs its window in turn, in index order,
    on the calling thread."""

    name = "round-robin"

    def run_window(
        self, psim: "PartitionedSimulator", shards: List[_PartitionShard], window_end: float
    ) -> None:
        for shard in shards:
            if psim._p_stopped:
                break
            psim._enter_shard(shard)
            try:
                shard.run(until=window_end)
            finally:
                psim._exit_shard()


class _ThreadPoolExecutor:
    """Opt-in executor: one worker thread per shard, barrier per window.

    The pool lives for one :meth:`PartitionedSimulator.run` call
    (:meth:`open`/:meth:`close` bracket it) so simulators never leak idle
    worker threads past their run."""

    name = "thread"

    def __init__(self) -> None:
        self._pool = None

    def open(self, nshards: int) -> None:
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=nshards, thread_name_prefix="sim-shard"
            )

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def run_window(
        self, psim: "PartitionedSimulator", shards: List[_PartitionShard], window_end: float
    ) -> None:
        self.open(len(shards))
        futures = [
            self._pool.submit(self._run_shard, psim, shard, window_end) for shard in shards
        ]
        # the barrier: every shard finishes its window before mailboxes
        # merge — including when one raises, or the merge (and the cleared
        # lookahead check) would race the straggler threads.
        first_error = None
        for future in futures:
            try:
                future.result()
            except BaseException as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error

    @staticmethod
    def _run_shard(
        psim: "PartitionedSimulator", shard: _PartitionShard, window_end: float
    ) -> None:
        psim._enter_shard(shard)
        try:
            shard.run(until=window_end)
        finally:
            psim._exit_shard()


def _make_executor(executor: Any) -> Any:
    if executor is None or executor == "round-robin":
        return _RoundRobinExecutor()
    if executor in ("thread", "threads", "thread-pool"):
        return _ThreadPoolExecutor()
    if executor in ("process", "processes", "process-pool"):
        from repro.simnet.procexec import ProcessPoolExecutor

        return ProcessPoolExecutor()
    if hasattr(executor, "run_window"):
        return executor
    raise SimulationError(
        f"unknown executor {executor!r}; expected 'round-robin', 'thread', "
        "'process' or an object with a run_window(sim, shards, window_end) method"
    )


class PartitionedSimulator(Simulator):
    """N per-partition event queues executed in conservative time windows.

    Constructed via ``Simulator(partitions=N, ...)``.  The public
    :class:`~repro.simnet.engine.Simulator` surface is preserved; the
    differences that can matter to model code:

    * :meth:`step` is unavailable (execution is window-at-a-time);
    * :meth:`call_at_partition` returns ``None`` (no cancellable handle) for
      a genuine boundary crossing;
    * :meth:`stop` halts the executing shard immediately and the run at the
      window barrier;
    * ``run(until=event)`` overshoots by at most one window (the run stops
      at the barrier after the event is processed).
    """

    def __init__(
        self,
        *,
        partitions: int,
        executor: Any = None,
        lookahead: Optional[float] = None,
        wheel_width: float = 64e-6,
        wheel_buckets: int = 512,
    ) -> None:
        # deliberately no super().__init__(): the facade owns no queue of its
        # own — every structure-touching method is overridden to route into a
        # shard, and a stray use of base internals should fail loudly.
        partitions = int(partitions)
        if partitions < 2:
            raise SimulationError(
                f"PartitionedSimulator needs at least 2 partitions, got {partitions}"
            )
        if lookahead is not None and lookahead <= 0.0:
            raise SimulationError(f"lookahead must be positive, got {lookahead!r}")
        self._shards: List[_PartitionShard] = [
            _PartitionShard(i, wheel_width=wheel_width, wheel_buckets=wheel_buckets)
            for i in range(partitions)
        ]
        self._mailboxes: List[List[Tuple]] = [[] for _ in range(partitions)]
        self._mail_lock = threading.Lock()
        self._tls = threading.local()
        self._time = 0.0
        self._window_end: Optional[float] = None
        self._configured_lookahead = lookahead
        self._boundaries: List[Any] = []
        self._executor = _make_executor(executor)
        self._p_stopped = False
        self.windows_run = 0
        self.mailbox_deliveries = 0
        # barrier-synchronized hooks: (when, seq, fn, args) min-heap, run at
        # the first window edge at/after `when` (see call_at_barrier)
        self._barrier_hooks: List[Tuple] = []
        self._barrier_seq = itertools.count()
        # barrier sample bus: per-shard publish buffers drained into the
        # registered channel consumers at every window barrier (boundary
        # probe samples et al.; see publish_at_barrier)
        self._bus_buffers: List[List[Tuple[str, Any]]] = [[] for _ in range(partitions)]
        self._bus_consumers: dict = {}
        self._bus_last_drain: Optional[List[Tuple]] = None
        # wire-protocol registries (process executor): named callbacks the
        # mailbox codec may ship across address spaces, and per-partition
        # state collectors evaluated inside the owning worker
        self._wire_handlers: dict = {}
        self._wire_names: dict = {}
        self._collectors: dict = {}
        # process-executor plumbing: the worker index when this replica runs
        # inside a worker process, mid-run barrier registrations to fan out,
        # and the construction-order event-uid registry
        self._worker_index: Optional[int] = None
        self._pending_hook_ships: List[Tuple] = []
        self._hook_ship_seq = itertools.count()
        if getattr(self._executor, "needs_event_uids", False):
            import weakref

            self._event_uid_counter = itertools.count()
            self._uid_map = weakref.WeakValueDictionary()

            def _track(ev, _ctr=self._event_uid_counter, _map=self._uid_map):
                ev.uid = uid = next(_ctr)
                _map[uid] = ev

            self._event_tracker = _track

    # -- shard routing ------------------------------------------------------
    def _enter_shard(self, shard: _PartitionShard) -> None:
        self._tls.shard = shard

    def _exit_shard(self) -> None:
        self._tls.shard = None

    def _active_shard(self) -> _PartitionShard:
        """The shard scheduling calls go to: an explicit ``in_partition``
        override, else the shard executing on this thread, else partition 0
        (deployment-construction default)."""
        override = getattr(self._tls, "override", None)
        if override:
            return override[-1]
        shard = getattr(self._tls, "shard", None)
        if shard is not None:
            return shard
        return self._shards[0]

    def in_partition(self, partition: int):
        """Route scheduling calls made inside the context to ``partition``.

        A deployment-construction tool: entering a *different* partition
        from executing model code is refused — the target shard's clock is
        mid-window (behind or ahead of the caller's), so direct scheduling
        there would violate causality; cross-partition scheduling from model
        code must go through :meth:`call_at_partition` (the mailbox path),
        and hosts whose bring-up can be triggered mid-run (gateways) should
        be booted at deployment time.
        """
        target = self._shards[self._check_partition(partition)]
        executing = getattr(self._tls, "shard", None)
        if executing is not None and executing is not target:
            raise SimulationError(
                f"cannot enter partition {partition} from model code executing "
                f"in partition {executing.index}: use call_at_partition for "
                "cross-partition scheduling, or set the deployment up before run()"
            )
        return _PartitionContext(self, target)

    def _check_partition(self, partition: int) -> int:
        if not 0 <= partition < len(self._shards):
            raise SimulationError(
                f"partition {partition!r} out of range (0..{len(self._shards) - 1})"
            )
        return partition

    @property
    def partition_count(self) -> int:
        return len(self._shards)

    @property
    def current_partition(self) -> int:
        return self._active_shard().index

    @property
    def in_model_context(self) -> bool:
        """True while executing model code inside a shard window (as opposed
        to deployment construction or barrier-context code)."""
        return getattr(self._tls, "shard", None) is not None

    # -- boundaries / lookahead --------------------------------------------
    def add_boundary(self, network: Any) -> Any:
        """Register a partition-spanning network; its (current) latency
        bounds the window width.  Idempotent; called automatically by
        :meth:`note_network_span` when an attachment makes a network span
        partitions."""
        if network not in self._boundaries:
            self._boundaries.append(network)
        return network

    def note_network_span(self, network: Any) -> None:
        """Called by :meth:`repro.simnet.network.Network.connect`: if the
        network's attached hosts now live in more than one partition it is a
        boundary link."""
        parts = {getattr(host, "partition", 0) for host in network.nics}
        if len(parts) > 1:
            self.add_boundary(network)

    def boundary_networks(self) -> List[Any]:
        return list(self._boundaries)

    def is_boundary(self, network: Any) -> bool:
        return network in self._boundaries

    def call_at_barrier(self, when: float, fn: Callable, *args: Any) -> None:
        """Defer ``fn(*args)`` to the first window barrier at/after ``when``.

        The hook runs on the facade between windows: every shard has drained
        its window and sits at a common virtual time (``now`` reads the
        facade clock), mailboxes are merged, and the *next* window's width
        is computed after the hook — so a hook that degrades a boundary
        link's latency below the old window width is safe: the next window
        shrinks instead of violating lookahead mid-flight.  Hooks fire in
        ``(when, registration order)``; scheduling calls made by a hook
        route like deployment-construction code (partition 0 unless wrapped
        in :meth:`in_partition`).

        Under the process executor every replica holds an identical copy of
        the hook heap (registrations at construction time, and from barrier
        context — hooks, bus consumers — replay identically everywhere).  A
        registration made by *shard model code* mid-run exists in one worker
        only; it is intercepted here and fanned out through the parent so
        all replicas pop the same hooks at the same edges — which requires
        the callback to be wire-encodable (see
        :meth:`register_wire_handler`).
        """
        if self._worker_index is not None and getattr(self._tls, "shard", None) is not None:
            # worker shard context: ship to the parent for barrier-riding
            # fan-out instead of mutating only this replica's heap
            self._pending_hook_ships.append((when, next(self._hook_ship_seq), fn, args))
            return None
        heapq.heappush(self._barrier_hooks, (when, next(self._barrier_seq), fn, args))
        return None

    # -- barrier sample bus --------------------------------------------------
    def register_barrier_channel(self, key: str, consumer: Callable) -> None:
        """Register the consumer for barrier-bus channel ``key``.

        ``consumer(batch)`` is called at each window barrier that drained at
        least one publication on the channel, with ``batch`` a list of
        ``(src_partition, publish_index, payload)`` in deterministic merged
        order.  Registration must happen at construction time (replicated
        into every process-executor worker); re-registering a key replaces
        the consumer.
        """
        self._bus_consumers[key] = consumer

    def publish_at_barrier(self, key: str, payload: Any) -> None:
        """Publish ``payload`` on barrier-bus channel ``key``.

        Buffered shard-locally (no locks, no mid-window shared writes) and
        delivered to the channel's consumer at the next window barrier in
        every replica.  Under the process executor the payload must be
        picklable.
        """
        self._bus_buffers[self._active_shard().index].append((key, payload))

    def _drain_barrier_bus(self, extra: Optional[List[Tuple]] = None) -> None:
        """Window barrier: deliver published payloads to channel consumers.

        ``extra`` carries ``(src_partition, publish_index, key, payload)``
        tuples gathered from worker processes; local buffers contribute in
        shard order.  Per channel, the batch is ordered by (source
        partition, publish index) — a pure function of per-shard publish
        streams, identical across executors.
        """
        batches: dict = {}
        merged: List[Tuple] = []
        for p, buf in enumerate(self._bus_buffers):
            if buf:
                for i, (key, payload) in enumerate(buf):
                    batches.setdefault(key, []).append((p, i, payload))
                    merged.append((p, i, key, payload))
                del buf[:]
        if extra:
            for p, i, key, payload in extra:
                batches.setdefault(key, []).append((p, i, payload))
                merged.append((p, i, key, payload))
        # the process executor fans the full merged batch (parent-local
        # publications + worker-gathered ones) out to every worker replica
        # next window, so each replica's consumers see the identical stream
        self._bus_last_drain = merged or None
        if not batches:
            return
        for key in sorted(batches):
            consumer = self._bus_consumers.get(key)
            if consumer is not None:
                batch = batches[key]
                batch.sort(key=lambda e: (e[0], e[1]))
                consumer(batch)

    # -- wire registries (process executor) -----------------------------------
    def register_wire_handler(self, name: str, fn: Callable) -> Callable:
        """Name ``fn`` for the cross-process mailbox wire protocol.

        Must be called identically in every replica — i.e. at deployment
        construction time, before ``run()`` — so each worker resolves the
        name to its own copy of the callback.  Frame deliveries
        (``Nic.handle_arrival``) are encoded structurally and need no
        registration; this is for scenario-level closures scheduled across
        partitions.  Harmless under the round-robin/thread executors.
        """
        if not name or not isinstance(name, str):
            raise SimulationError(f"wire handler name must be a non-empty str, got {name!r}")
        self._wire_handlers[name] = fn
        self._wire_names[fn] = name
        return fn

    def register_collector(self, name: str, fn: Callable) -> Callable:
        """Register ``fn(p) -> picklable`` as per-partition state collector.

        See :meth:`collect`.  Like wire handlers, collectors must be
        registered at construction time so process-executor workers hold a
        replica of the closure (and of the state it closes over).
        """
        self._collectors[name] = fn
        return fn

    def collect(self, name: str) -> List[Any]:
        """Evaluate collector ``name`` for every partition.

        Returns a list indexed by partition.  Under the process executor,
        entry ``p`` is computed *inside worker* ``p`` (the replica whose
        shard actually executed), which is the only way to read scenario
        state back out of shard-owned object graphs.  Under the round-robin
        and thread executors the shared graph is evaluated directly, so the
        result is executor-independent for state the contract keeps
        partition-local.
        """
        fn = self._collectors.get(name)
        if fn is None:
            raise SimulationError(f"no collector registered under {name!r}")
        gather = getattr(self._executor, "collect", None)
        if gather is not None:
            gathered = gather(self, name)
            if gathered is not None:
                return gathered
        return [fn(p) for p in range(len(self._shards))]

    def effective_lookahead(self) -> float:
        """The window width for the next window: the minimum of the
        configured ``lookahead`` and the *current* latency of every boundary
        network (recomputed per window so degraded links shrink the window
        instead of breaking conservation)."""
        width = self._configured_lookahead
        for network in self._boundaries:
            latency = network.latency
            if width is None or latency < width:
                width = latency
        if width is None:
            width = DEFAULT_LOOKAHEAD
        if width <= 0.0:
            raise SimulationError(
                "effective lookahead collapsed to zero: a boundary network has "
                "zero latency; partitions joined by latency-free links cannot "
                "execute conservatively"
            )
        return width

    # -- clock --------------------------------------------------------------
    @property
    def now(self) -> float:
        shard = getattr(self._tls, "shard", None)
        if shard is not None:
            return shard._now
        override = getattr(self._tls, "override", None)
        if override:
            return override[-1]._now
        return self._time

    # -- scheduling ----------------------------------------------------------
    def call_later(self, delay: float, fn: Callable, *args: Any) -> TimerHandle:
        return self._active_shard().call_later(delay, fn, *args)

    def call_at(self, when: float, fn: Callable, *args: Any) -> TimerHandle:
        return self._active_shard().call_at(when, fn, *args)

    def _push_triggered(self, ev: SimEvent) -> None:
        self._active_shard()._push_triggered(ev)

    def call_at_partition(
        self, partition: int, when: float, fn: Callable, *args: Any
    ) -> Optional[TimerHandle]:
        dst = self._shards[self._check_partition(partition)]
        src = getattr(self._tls, "shard", None)
        if src is None or src is dst:
            # outside the run loop, or a partition-local delivery: straight
            # into the destination queue — same path as the single kernel.
            return dst.call_at(when, fn, *args)
        window_end = self._window_end
        if window_end is not None and when < window_end:
            raise LookaheadViolation(
                f"cross-partition event at t={when!r} lands inside the current "
                f"window (horizon {window_end!r}): the link from partition "
                f"{src.index} to {dst.index} is faster than the lookahead"
            )
        entry = (when, src._now, src.index, next(src._mail_seq), fn, args)
        with self._mail_lock:
            self._mailboxes[dst.index].append(entry)
        return None

    def _merge_mailboxes(self) -> None:
        """The window barrier: drain every mailbox into its destination
        shard in ``(when, sent_at, src_partition, src_seq)`` order — the
        deterministic total order for cross-partition deliveries."""
        for dst, box in zip(self._shards, self._mailboxes):
            if not box:
                continue
            box.sort(key=lambda e: e[:4])
            for when, _sent_at, _src, _seq, fn, args in box:
                # `when >= horizon >= dst.now` by the lookahead check; equal
                # timestamps land on the ready FIFO in mailbox order.
                dst.call_at(max(when, dst._now), fn, *args)
            self.mailbox_deliveries += len(box)
            box.clear()

    # -- main loop -----------------------------------------------------------
    def step(self) -> bool:  # pragma: no cover - explicit API gap
        raise SimulationError(
            "PartitionedSimulator executes window-at-a-time; use run() "
            "(single-step debugging wants Simulator(partitions=1))"
        )

    def _next_when(self) -> Optional[float]:
        best = None
        # the process executor tracks worker-reported next-event times (the
        # parent's replica shards are frozen construction-time state)
        hint = getattr(self._executor, "next_event_time", None)
        if hint is not None:
            best = hint(self)
        else:
            for shard in self._shards:
                t = shard.next_event_time()
                if t is not None and (best is None or t < best):
                    best = t
        if self._barrier_hooks:
            t = self._barrier_hooks[0][0]
            if best is None or t < best:
                best = t
        return best

    def run(self, until: Optional[Any] = None, max_time: Optional[float] = None) -> Any:
        self._p_stopped = False
        target_event: Optional[SimEvent] = None
        target_time: Optional[float] = None
        if isinstance(until, SimEvent):
            target_event = until
        elif until is not None:
            target_time = float(until)

        prepare = getattr(self._executor, "on_run_start", None)
        if prepare is not None:
            prepare(self)
        watcher = None
        if target_event is not None:
            make_watcher = getattr(self._executor, "make_watcher", None)
            if make_watcher is not None:
                watcher = make_watcher(self, target_event)

        try:
            self._run_windows(target_event, target_time, max_time, watcher)
        finally:
            finish = getattr(self._executor, "on_run_end", None)
            if finish is not None:
                finish(self)
            close = getattr(self._executor, "close", None)
            if close is not None:
                close()

        if watcher is not None:
            if watcher.done:
                ok, value = watcher.outcome()
                if ok:
                    return value
                raise value
            return None
        if target_event is not None and target_event.triggered:
            if target_event.ok:
                return target_event.value
            raise target_event.value
        return None

    def _target_done(self, target_event: Optional[SimEvent], watcher: Optional[Any]) -> bool:
        if watcher is not None:
            return watcher.done
        return target_event is not None and target_event._processed

    def _run_windows(
        self,
        target_event: Optional[SimEvent],
        target_time: Optional[float],
        max_time: Optional[float],
        watcher: Optional[Any] = None,
    ) -> None:
        take_bus = getattr(self._executor, "take_bus", None)
        while not self._p_stopped:
            if self._target_done(target_event, watcher):
                break
            nxt = self._next_when()
            if nxt is None:
                if target_event is not None and not self._target_done(target_event, watcher):
                    raise SimulationError(
                        f"simulation ran out of events while waiting for {target_event!r} "
                        "(deadlock: nobody will ever trigger it)"
                    )
                # natural exhaustion: commit a common clock so later
                # scheduling (relative delays) agrees across partitions.
                for shard in self._shards:
                    if shard._now > self._time:
                        self._time = shard._now
                for shard in self._shards:
                    if shard._now < self._time:
                        shard._now = self._time
                break
            if target_time is not None and nxt > target_time:
                for shard in self._shards:
                    if shard._now < target_time:
                        shard._now = target_time
                self._time = target_time
                break
            if max_time is not None and nxt > max_time:
                raise SimulationError(f"virtual time exceeded max_time={max_time}")
            window_end = nxt + self.effective_lookahead()
            if target_time is not None and window_end > target_time:
                window_end = target_time
            if max_time is not None and window_end > max_time:
                window_end = max_time
            self._window_end = window_end
            try:
                self._executor.run_window(self, self._shards, window_end)
            finally:
                # merge even when model code raised out of a shard: mailbox
                # entries are post-horizon and safe to deliver any time.
                self._window_end = None
                self._merge_mailboxes()
            self.windows_run += 1
            for shard in self._shards:
                if shard._now > self._time:
                    self._time = shard._now
            # window edge: deliver barrier-bus publications (boundary probe
            # samples) in the deterministic merged order — before telemetry
            # drains (consumer emissions commit with this barrier) and
            # before hooks (samples observed this window predate edge churn)
            self._drain_barrier_bus(take_bus(self) if take_bus is not None else None)
            # window edge: drain per-shard telemetry buffers into the
            # deterministic merged stream (executor-independent order)
            hub = self.telemetry
            if hub is not None:
                hub.on_window_barrier(window_end)
            # window edge: every shard has reached the horizon — run the
            # barrier hooks that have come due (boundary-link churn et al.)
            hooks = self._barrier_hooks
            while hooks and hooks[0][0] <= window_end and not self._p_stopped:
                _when, _seq, fn, args = heapq.heappop(hooks)
                fn(*args)

    def stop(self) -> None:
        """Stop the run: the executing shard halts immediately, remaining
        shards at the window barrier."""
        self._p_stopped = True
        shard = getattr(self._tls, "shard", None)
        if shard is not None:
            shard.stop()

    def shutdown(self) -> None:
        """Release executor resources (worker processes/threads).

        Idempotent; a no-op for executors without persistent state.  The
        process executor's worker pool survives across :meth:`run` calls so
        multi-phase scenarios reuse it — call this (or let the simulator be
        garbage-collected) when done."""
        stop = getattr(self._executor, "shutdown", None)
        if stop is None:
            stop = getattr(self._executor, "close", None)
        if stop is not None:
            stop()

    def set_build_spec(self, fn: Callable, *args: Any) -> None:
        """Declare how worker processes rebuild the deployment.

        Delegates to the process executor (see
        :meth:`~repro.simnet.procexec.ProcessPoolExecutor.set_build_spec`);
        a no-op on executors that share the parent's object graph."""
        setter = getattr(self._executor, "set_build_spec", None)
        if setter is not None:
            setter(fn, *args)

    def begin_profile(self) -> None:
        """Arm per-shard profiling (process executor: a ``cProfile`` run
        inside each worker, covering shard windows only).  A no-op on
        executors without per-shard profiling support."""
        start = getattr(self._executor, "begin_profile", None)
        if start is not None:
            start()

    def end_profile(self) -> Optional[List[Optional[dict]]]:
        """Stop per-shard profiling and return one raw ``cProfile`` stats
        dict per partition (``None`` entries for shards that never ran;
        ``None`` overall when the executor does not profile)."""
        stop = getattr(self._executor, "end_profile", None)
        if stop is None:
            return None
        return stop()

    # -- introspection -------------------------------------------------------
    def pending_count(self) -> int:
        live = None
        worker_live = getattr(self._executor, "pending_live", None)
        if worker_live is not None:
            live = worker_live(self)
        if live is None:
            live = sum(shard._live for shard in self._shards)
        return live + sum(len(box) for box in self._mailboxes) + len(self._barrier_hooks)

    def stats(self) -> SimStats:
        """Aggregated kernel counters across all shards, in the same
        :class:`~repro.simnet.engine.SimStats` shape the single loop
        returns (``.as_dict()`` keys match field-for-field).

        ``events_processed``, ``timers_scheduled``, ``cancellations`` and
        ``wheel_rebuilds`` sum exactly across shards.  ``peak_pending`` is
        per-shard by nature: the merged value is the *sum of per-shard
        peaks*, an upper bound on the true concurrent peak (shards hit
        their maxima at different instants).  Use :meth:`partition_stats`
        for the undistorted per-shard view.  All counters are executor-
        independent: every executor runs identical per-shard schedules, so
        ``stats()`` compares equal across round-robin, thread and process
        (the latter barrier-samples the counters out of its workers)."""
        shard_stats = self.partition_stats()
        return SimStats(
            events_processed=sum(s.events_processed for s in shard_stats),
            timers_scheduled=sum(s.timers_scheduled for s in shard_stats),
            cancellations=sum(s.cancellations for s in shard_stats),
            peak_pending=sum(s.peak_pending for s in shard_stats),
            wheel_rebuilds=sum(s.wheel_rebuilds for s in shard_stats),
        )

    def partition_stats(self) -> List[SimStats]:
        """Per-shard counter snapshots, in partition order.  Under the
        process executor shard ``p``'s counters come from worker ``p``'s
        last window report (the parent replica never executes)."""
        gather = getattr(self._executor, "partition_stats", None)
        if gather is not None:
            gathered = gather(self)
            if gathered is not None:
                return gathered
        return [shard.stats() for shard in self._shards]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PartitionedSimulator partitions={len(self._shards)} "
            f"executor={self._executor.name} t={self._time:g} "
            f"windows={self.windows_run}>"
        )


class _PartitionContext:
    """Context manager pushing a partition override onto the calling
    thread's routing stack (see :meth:`PartitionedSimulator.in_partition`)."""

    __slots__ = ("sim", "shard")

    def __init__(self, sim: PartitionedSimulator, shard: _PartitionShard):
        self.sim = sim
        self.shard = shard

    def __enter__(self) -> PartitionedSimulator:
        tls = self.sim._tls
        stack = getattr(tls, "override", None)
        if stack is None:
            stack = tls.override = []
        stack.append(self.shard)
        return self.sim

    def __exit__(self, *_exc: Any) -> None:
        self.sim._tls.override.pop()
