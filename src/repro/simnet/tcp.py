"""A window-based TCP model for the distributed-paradigm networks.

The system-level interface of the distributed world in the paper is the
socket API provided by the operating system; the SysIO subsystem of the
NetAccess arbitration layer sits directly on top of it.  This module plays
the role of that OS network stack:

* connection establishment (SYN / SYN-ACK, one round trip),
* an ordered byte-stream per connection,
* congestion control — slow start + AIMD with a per-burst loss draw — which
  is what makes a single stream collapse on lossy WANs (the 150 KB/s TCP
  figure of §5) and what parallel streams (GridFTP-style) work around,
* kernel-crossing and copy costs charged per operation.

The model is *burst based*: each "round" the sender pushes up to one
congestion window of bytes as a single simulated frame, then waits for the
longer of the acknowledgement round-trip and the wire serialisation time
before the next round.  For a loss-free LAN this converges to the wire
bandwidth; for a long fat network it converges to the Mathis steady state
``~MSS/(RTT*sqrt(p))`` that the VTHD measurements reflect.
"""

from __future__ import annotations

import itertools
import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.simnet.buffers import ByteRing
from repro.simnet.cost import Cost, KB
from repro.simnet.fluid import FluidController, FluidPolicy
from repro.simnet.network import Delivery, Network, PARADIGM_DISTRIBUTED

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnet.engine import SimEvent
    from repro.simnet.host import Host


SERVICE_KEY = "tcp"

CH_SYN = "tcp-syn"
CH_SYNACK = "tcp-synack"
CH_DATA = "tcp-data"
CH_FIN = "tcp-fin"


@dataclass
class TcpModel:
    """Tunable parameters of the TCP window model."""

    #: initial congestion window, in segments (RFC 2581-era default).
    initial_window_segments: int = 2
    #: receiver window (socket buffer) in bytes.
    receive_window: int = 256 * KB
    #: initial slow-start threshold in bytes ("infinite" by default).
    initial_ssthresh: int = 1 << 30
    #: minimum congestion window in segments.
    min_window_segments: int = 1
    #: retransmission timeout expressed in round-trip times.
    rto_rtts: float = 2.0

    def initial_cwnd(self, mss: int) -> int:
        return self.initial_window_segments * mss

    def min_cwnd(self, mss: int) -> int:
        return self.min_window_segments * mss


class TcpError(ConnectionError):
    """Connection-level failures (refused, reset, closed)."""


FIDELITY_PACKET = "packet"
FIDELITY_HYBRID = "hybrid"


class TcpStack:
    """Per-host OS network stack for distributed-paradigm networks.

    ``fidelity`` selects the simulation fidelity for this stack's
    connections: ``"packet"`` (default) runs every congestion-window burst
    through the full per-frame model; ``"hybrid"`` lets stable flows switch
    to the fluid fast path (:mod:`repro.simnet.fluid`).  A custom
    ``fluid_policy`` implies hybrid fidelity.
    """

    def __init__(
        self,
        host: "Host",
        model: Optional[TcpModel] = None,
        *,
        fidelity: str = FIDELITY_PACKET,
        fluid_policy: Optional[FluidPolicy] = None,
    ):
        if fluid_policy is not None:
            fidelity = FIDELITY_HYBRID
        if fidelity not in (FIDELITY_PACKET, FIDELITY_HYBRID):
            raise ValueError(f"unknown fidelity {fidelity!r}")
        self.fidelity = fidelity
        self.fluid_policy = (
            fluid_policy
            if fluid_policy is not None
            else (FluidPolicy() if fidelity == FIDELITY_HYBRID else None)
        )
        self.host = host
        self.sim = host.sim
        # flight-recorder hook (wired by PadicoFramework.enable_telemetry);
        # None = recording off, one attribute check on the hot paths
        self.telemetry = None
        self.model = model or TcpModel()
        self._listeners: Dict[int, "TcpListener"] = {}
        self._connections: Dict[int, "TcpConnection"] = {}
        self._conn_ids = itertools.count(1)
        self._ephemeral_ports = itertools.count(32768)
        self._owned_networks: List[Network] = []
        host.register_service(SERVICE_KEY, self)
        # The OS owns the IP NICs from boot: claim whatever is already
        # attached so that e.g. RSTs for unserved ports can be delivered.
        self.attach_all()

    # -- network attachment -------------------------------------------------
    def attach(self, network: Network) -> None:
        """Claim the host's NIC on ``network`` (the stack is the OS: it owns
        the distributed-paradigm NICs, and everything above goes through it)."""
        if network.paradigm != PARADIGM_DISTRIBUTED:
            raise ValueError(
                f"TcpStack only drives distributed-paradigm networks, not {network.name!r}"
            )
        if network in self._owned_networks:
            return
        nic = network.nic_of(self.host)
        nic.set_receive_handler(self._handle_delivery, owner="os-tcp")
        self._owned_networks.append(network)

    def attach_all(self) -> None:
        """Attach every distributed-paradigm network the host is connected to."""
        for network in self.host.networks():
            if network.paradigm == PARADIGM_DISTRIBUTED:
                self.attach(network)

    def networks(self) -> List[Network]:
        return list(self._owned_networks)

    def _default_network_to(self, peer: "Host") -> Network:
        for network in self._owned_networks:
            if network.is_attached(peer):
                return network
        # fall back to any shared distributed network, attaching lazily
        for network in self.host.shares_network_with(peer):
            if network.paradigm == PARADIGM_DISTRIBUTED:
                self.attach(network)
                return network
        raise TcpError(
            f"no common IP network between {self.host.name} and {peer.name}"
        )

    # -- passive open ---------------------------------------------------------
    def listen(self, port: int, backlog: int = 16) -> "TcpListener":
        """Create a listening socket on ``port``."""
        if port in self._listeners:
            raise TcpError(f"port {port} already in use on {self.host.name}")
        self.attach_all()
        listener = TcpListener(self, port, backlog)
        self._listeners[port] = listener
        return listener

    def close_listener(self, port: int) -> None:
        self._listeners.pop(port, None)

    # -- active open -------------------------------------------------------------
    def connect(
        self, peer: "Host", port: int, network: Optional[Network] = None
    ) -> "SimEvent":
        """Open a connection to ``peer:port``.

        Returns an event that succeeds with the established
        :class:`TcpConnection` after one handshake round-trip, or fails with
        :class:`TcpError` if nobody listens on the port.
        """
        network = network or self._default_network_to(peer)
        self.attach(network)
        conn = TcpConnection(
            stack=self,
            network=network,
            peer_host=peer,
            local_port=next(self._ephemeral_ports),
            remote_port=port,
        )
        self._connections[conn.conn_id] = conn
        done = self.sim.event(name=f"connect({self.host.name}->{peer.name}:{port})")
        conn._connect_event = done
        cost = Cost().charge(self.host.cpu.syscall_overhead, "tcp.connect")
        network.transmit(
            self.host,
            peer,
            b"SYN",
            channel=(CH_SYN, port),
            send_cost=cost,
            meta={"client_conn": conn.conn_id, "client_port": conn.local_port},
        )
        return done

    # -- demultiplexing -----------------------------------------------------------
    def _handle_delivery(self, delivery: Delivery) -> None:
        delivery.traverse("os-tcp")
        channel = delivery.frame.channel
        if not isinstance(channel, tuple) or len(channel) != 2:
            delivery.frame.network.record_drop(delivery.frame, "tcp-bad-channel")
            return
        kind, key = channel
        if kind == CH_SYN:
            self._handle_syn(key, delivery)
        elif kind == CH_SYNACK:
            self._handle_synack(key, delivery)
        elif kind == CH_DATA:
            conn = self._connections.get(key)
            if conn is not None:
                conn._on_segment(delivery)
            else:
                delivery.frame.network.record_drop(delivery.frame, "tcp-no-conn")
        elif kind == CH_FIN:
            conn = self._connections.get(key)
            if conn is not None:
                conn._on_fin(delivery)
        else:
            delivery.frame.network.record_drop(delivery.frame, "tcp-unknown")

    def _handle_syn(self, port: int, delivery: Delivery) -> None:
        listener = self._listeners.get(port)
        frame = delivery.frame
        client_conn_id = frame.meta["client_conn"]
        if listener is None or listener.is_full():
            # RST: tell the client the connection was refused.
            frame.network.transmit(
                self.host,
                frame.src,
                b"RST",
                channel=(CH_SYNACK, client_conn_id),
                send_cost=Cost().charge(self.host.cpu.syscall_overhead, "tcp.rst"),
                meta={"refused": True},
            )
            return
        conn = TcpConnection(
            stack=self,
            network=frame.network,
            peer_host=frame.src,
            local_port=port,
            remote_port=frame.meta["client_port"],
        )
        conn.peer_conn_id = client_conn_id
        conn.established = True
        self._connections[conn.conn_id] = conn
        if self.telemetry is not None:
            self.telemetry.emit(
                "flow.open",
                flow=conn.flow_id,
                src=self.host.name,
                dst=frame.src.name,
                port=port,
                role="server",
            )
        cost = Cost().charge(self.host.cpu.syscall_overhead, "tcp.accept")
        frame.network.transmit(
            self.host,
            frame.src,
            b"SYNACK",
            channel=(CH_SYNACK, client_conn_id),
            send_cost=cost,
            meta={"server_conn": conn.conn_id},
        )
        listener._enqueue(conn, delivery)

    def _handle_synack(self, client_conn_id: int, delivery: Delivery) -> None:
        conn = self._connections.get(client_conn_id)
        if conn is None:
            return
        frame = delivery.frame
        done = conn._connect_event
        conn._connect_event = None
        if frame.meta.get("refused"):
            self._connections.pop(client_conn_id, None)
            if done is not None and not done.triggered:
                done.fail(TcpError(f"connection refused by {frame.src.name}:{conn.remote_port}"))
            return
        conn.peer_conn_id = frame.meta["server_conn"]
        conn.established = True
        if self.telemetry is not None:
            self.telemetry.emit(
                "flow.open",
                flow=conn.flow_id,
                src=self.host.name,
                dst=frame.src.name,
                port=conn.remote_port,
                role="client",
            )
        delivery.cost.charge(self.host.cpu.syscall_overhead, "tcp.connect-complete")
        if done is not None and not done.triggered:
            delivery.complete_into(done, conn)

    def _unregister(self, conn: "TcpConnection") -> None:
        self._connections.pop(conn.conn_id, None)

    def new_conn_id(self) -> int:
        return next(self._conn_ids)


class TcpListener:
    """A listening socket: queue of established connections plus accept events."""

    def __init__(self, stack: TcpStack, port: int, backlog: int):
        self.stack = stack
        self.port = port
        self.backlog = backlog
        self._ready: List[TcpConnection] = []
        self._waiters: List = []
        self._accept_callback: Optional[Callable[["TcpConnection"], None]] = None
        self.accepted_count = 0

    def is_full(self) -> bool:
        return len(self._ready) >= self.backlog

    def set_accept_callback(self, fn: Callable[["TcpConnection"], None]) -> None:
        """Callback mode used by SysIO: invoked for every incoming connection."""
        self._accept_callback = fn
        while self._ready:
            fn(self._ready.pop(0))

    def accept(self) -> "SimEvent":
        """Event mode: succeeds with the next established connection."""
        ev = self.stack.sim.event(name=f"accept(:{self.port})")
        if self._ready:
            ev.succeed(self._ready.pop(0))
        else:
            self._waiters.append(ev)
        return ev

    def _enqueue(self, conn: "TcpConnection", delivery: Delivery) -> None:
        self.accepted_count += 1
        if self._waiters:
            delivery.complete_into(self._waiters.pop(0), conn)
        elif self._accept_callback is not None:
            self._accept_callback(conn)
        else:
            self._ready.append(conn)

    def close(self) -> None:
        self.stack.close_listener(self.port)


class TcpConnection:
    """One established (or connecting) TCP endpoint."""

    def __init__(
        self,
        stack: TcpStack,
        network: Network,
        peer_host: "Host",
        local_port: int,
        remote_port: int,
    ):
        self.stack = stack
        self.sim = stack.sim
        self.network = network
        self.host = stack.host
        self.peer_host = peer_host
        self.local_port = local_port
        self.remote_port = remote_port
        self.conn_id = stack.new_conn_id()
        # telemetry flow identity: per-host conn_ids are deterministic
        # across runs, fidelities and partitionings, so this labels the
        # same logical flow in every variant of a seeded scenario
        self.flow_id = f"{self.host.name}#{self.conn_id}"
        self.peer_conn_id: Optional[int] = None
        self.established = False
        self.closed = False
        self._connect_event: Optional["SimEvent"] = None

        mss = network.mtu
        self.mss = mss
        self.cwnd = stack.model.initial_cwnd(mss)
        self.ssthresh = stack.model.initial_ssthresh
        self._rng = random.Random((network.rng.randint(0, 1 << 30) << 8) ^ self.conn_id)

        self._sendq: Deque[List] = deque()  # entries: [memoryview, offset, done_event, total]
        self._pumping = False
        self._rx_buffer = ByteRing()
        self._pending_reads: Deque[Tuple[Optional[int], bool, "SimEvent"]] = deque()
        self._data_callback: Optional[Callable[["TcpConnection"], None]] = None
        self._close_callback: Optional[Callable[["TcpConnection"], None]] = None

        self.bytes_sent = 0
        self.bytes_received = 0
        self.retransmitted_bytes = 0
        self.rounds = 0
        # fidelity controller (hybrid mode only): observes packet rounds,
        # takes over the pump for provably-stable stretches of the flow.
        policy = stack.fluid_policy
        self._fluid = FluidController(self, policy) if policy is not None else None
        # receive-side cursor serializing segment appends: a later smaller
        # segment's cheaper kernel-side processing must never let its bytes
        # overtake an earlier larger one — this is a byte stream.
        self._last_rx_ready = 0.0

    # -- introspection --------------------------------------------------------
    @property
    def rtt(self) -> float:
        return 2.0 * self.network.latency

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TcpConnection #{self.conn_id} {self.host.name}:{self.local_port}"
            f"->{self.peer_host.name}:{self.remote_port} cwnd={self.cwnd}>"
        )

    # -- sending ------------------------------------------------------------------
    def send(self, data: bytes) -> "SimEvent":
        """Queue ``data`` on the stream.

        The returned event succeeds (with the byte count) when the last byte
        of this call has been delivered into the peer's receive buffer.
        """
        if self.closed:
            raise TcpError("send() on closed connection")
        if not self.established:
            raise TcpError("send() before the connection is established")
        done = self.sim.event(name="tcp-send")
        if len(data) == 0:
            done.succeed(0)
            return done
        # `bytes` payloads are aliased, not copied (the queue only reads);
        # anything else is snapshotted — a readonly memoryview can still
        # expose a mutable backing store (memoryview(bytearray).toreadonly())
        if type(data) is not bytes:
            data = bytes(data)
        self._sendq.append([memoryview(data), 0, done, len(data)])
        if self.stack.telemetry is not None:
            self.stack.telemetry.emit("flow.send", flow=self.flow_id, nbytes=len(data))
        if not self._pumping:
            self._pumping = True
            if self._fluid is not None:
                self._fluid.on_join()
            # Charge the send()-side kernel crossing and user->kernel copy once
            # per send call; per-burst wire costs are handled by the pump.
            cost = Cost()
            cost.charge(self.host.cpu.syscall_overhead, "tcp.send.syscall")
            cost.charge_copy(len(data), self.host.cpu.memcpy_bandwidth, "tcp.send.copy")
            self.sim.call_later(cost.seconds, self._pump)
        return done

    def _pump(self) -> None:
        if self.closed or not self._sendq:
            self._pumping = False
            if self._fluid is not None:
                self._fluid.on_drain()
            return
        fluid = self._fluid
        if fluid is not None and fluid.pump():
            return
        window = min(self.cwnd, self.stack.model.receive_window)
        parts, attempted, finishing = self._gather_window(window)
        npkts = self.network.packets_for(attempted)
        lost_pkts = self._draw_losses(npkts)
        self._packet_round(parts, attempted, finishing, npkts, lost_pkts)
        if fluid is not None:
            fluid.note_packet_round(lost_pkts)

    def _gather_window(self, window: int):
        """Take up to one window of bytes off the send queue head.

        Returns ``(parts, attempted, finishing)``: zero-copy slices (joined
        at most once downstream), the byte count, and the
        ``(done_event, total)`` pairs of sends fully consumed by this window.
        """
        parts: List[memoryview] = []
        attempted = 0
        finishing: List[Tuple["SimEvent", int]] = []
        while self._sendq and attempted < window:
            entry = self._sendq[0]
            view, offset = entry[0], entry[1]
            take = min(window - attempted, len(view) - offset)
            parts.append(view[offset : offset + take])
            entry[1] = offset + take
            attempted += take
            if entry[1] >= len(view):
                self._sendq.popleft()
                finishing.append((entry[2], entry[3]))
        return parts, attempted, finishing

    def _packet_round(
        self,
        parts: List[memoryview],
        attempted: int,
        finishing: List[Tuple["SimEvent", int]],
        npkts: int,
        lost_pkts: int,
    ) -> None:
        """Execute one full-fidelity burst round (the loss draw already made)."""
        delivered = attempted if lost_pkts == 0 else max(0, attempted - lost_pkts * self.mss)
        self.rounds += 1
        if npkts and self.network._observers:
            # Surface the window model's internal loss draw to the network
            # instrumentation hooks: passive probes otherwise never see TCP
            # losses (the model absorbs them instead of dropping frames), so
            # passive WAN loss estimates — and the method parameters derived
            # from them — read zero on TCP-carried hops.  Zero-loss bursts
            # are reported too: they are the samples that gate estimator
            # readiness on lossless links and that decay the windowed loss
            # estimate after a degraded link recovers.
            self.network._observe(
                "tcp-burst", npkts=npkts, lost_pkts=lost_pkts, nbytes=attempted
            )

        burst = parts[0] if len(parts) == 1 else memoryview(b"".join(parts))
        if delivered > 0:
            payload = burst if delivered == attempted else burst[:delivered]
            frame = self.network.transmit(
                self.host,
                self.peer_host,
                payload,
                channel=(CH_DATA, self.peer_conn_id),
                send_cost=None,
                # tcp_data tags the frame for passive observers: its loss
                # verdict travels in the burst's "tcp-burst" observation,
                # so the frame itself must not count as a loss sample.
                meta={"seq": self.bytes_sent, "tcp_data": True},
            )
            arrival = frame.meta["arrival"]
            self.bytes_sent += delivered
        else:
            arrival = None

        undelivered = attempted - delivered
        if undelivered > 0:
            self.retransmitted_bytes += undelivered
            # Put the unsent suffix back at the head of the queue, preserving
            # per-send completion bookkeeping.
            leftover = burst[delivered:]
            requeue = [leftover, 0, None, len(leftover)]
            self._sendq.appendleft(requeue)
            # Completion events for sends whose tail was cut must be deferred:
            # move them onto the requeued entry.
            if finishing:
                requeue[2] = finishing[-1][0]
                finishing = finishing[:-1]

        for done, total in finishing:
            if done is None or done.triggered:
                continue
            if arrival is not None:
                self.sim.call_at(arrival, self._complete_send, done, total)
            else:  # pragma: no cover - whole burst lost and nothing delivered
                self._sendq.append([memoryview(b""), 0, done, total])

        self._update_window(lost_pkts, delivered)
        if self.stack.telemetry is not None:
            self.stack.telemetry.emit(
                "flow.round",
                flow=self.flow_id,
                nbytes=attempted,
                lost=lost_pkts,
                cwnd=self.cwnd,
            )

        serialization = self.network.serialization_time(attempted) if attempted else 0.0
        if self._sendq:
            if delivered == 0:
                wait = self.stack.model.rto_rtts * self.rtt
            else:
                wait = max(self.rtt, serialization)
            # Never pump faster than the NIC can drain (other connections on
            # the same host share the wire).
            nic = self.network.nic_of(self.host)
            wait = max(wait, nic.tx_free_at - self.sim.now)
            self.sim.call_later(wait, self._pump)
        else:
            self._pumping = False
            if self._fluid is not None:
                self._fluid.on_drain()

    def _complete_send(self, done: "SimEvent", total: int) -> None:
        """Fire a send's completion event at its last byte's arrival.

        The single convergence point of all three data paths (packet round,
        fluid step, fluid epoch), which is what makes the emitted
        ``flow.complete`` instants float-identical across fidelities."""
        if not done.triggered:
            done.succeed(total)
            tele = self.stack.telemetry
            if tele is not None:
                tele.emit("flow.complete", flow=self.flow_id, nbytes=total)

    def _draw_losses(self, npkts: int) -> int:
        p = self.network.loss_rate
        if p <= 0.0 or npkts == 0:
            return 0
        lost = 0
        for _ in range(npkts):
            if self._rng.random() < p:
                lost += 1
        return lost

    def _update_window(self, lost_pkts: int, delivered: int) -> None:
        mss = self.mss
        if lost_pkts > 0:
            self.ssthresh = max(self.cwnd // 2, 2 * mss)
            if delivered == 0:
                # retransmission timeout: back to one segment, slow start again
                self.cwnd = self.stack.model.min_cwnd(mss)
            else:
                self.cwnd = self.ssthresh
        else:
            if self.cwnd < self.ssthresh:
                self.cwnd += delivered  # slow start: double per round
            else:
                self.cwnd += mss  # congestion avoidance: +1 MSS per round
        self.cwnd = max(self.cwnd, self.stack.model.min_cwnd(mss))
        self.cwnd = min(self.cwnd, self.stack.model.receive_window)

    # -- receiving -----------------------------------------------------------------
    def _on_segment(self, delivery: Delivery) -> None:
        delivery.traverse(f"tcp-conn-{self.conn_id}")
        delivery.cost.charge(self.host.cpu.syscall_overhead, "tcp.recv.syscall")
        delivery.cost.charge_copy(
            delivery.frame.nbytes, self.host.cpu.memcpy_bandwidth, "tcp.recv.copy"
        )
        # Enqueue the bytes once the kernel-side processing time has elapsed.
        ready = max(delivery.ready_time(), self._last_rx_ready)
        self._last_rx_ready = ready
        self.sim.call_at(ready, self._append_rx, delivery.payload)

    def _append_rx(self, payload: bytes) -> None:
        self._rx_buffer.append(payload)
        self.bytes_received += len(payload)
        self._satisfy_reads()
        if self._data_callback is not None and self._rx_buffer:
            self._data_callback(self)

    def _append_rx_parts(self, parts) -> None:
        """Batched arrival: enqueue every chunk, then wake readers once.

        A fluid epoch hands the whole collapsed window sequence over in one
        delivery; readers and the data callback observe it as a single
        arrival, matching how they would see the bytes had they polled
        after the packet model's final burst."""
        append = self._rx_buffer.append
        total = 0
        for part in parts:
            append(part)
            total += len(part)
        self.bytes_received += total
        self._satisfy_reads()
        if self._data_callback is not None and self._rx_buffer:
            self._data_callback(self)

    def _on_fin(self, delivery: Delivery) -> None:
        # the close must not overtake data segments still being processed
        self.sim.call_at(max(delivery.ready_time(), self._last_rx_ready), self._do_close_passive)

    def _do_close_passive(self) -> None:
        if self.closed:
            return
        self.closed = True
        tele = self.stack.telemetry
        if tele is not None:
            tele.emit(
                "flow.close",
                flow=self.flow_id,
                sent=self.bytes_sent,
                received=self.bytes_received,
            )
        self._fail_pending()
        if self._close_callback is not None:
            self._close_callback(self)

    def _satisfy_reads(self) -> None:
        buffer = self._rx_buffer
        pending = self._pending_reads
        while pending and buffer._size:
            nbytes, exact, ev = pending[0]
            if exact and nbytes is not None and buffer._size < nbytes:
                return
            pending.popleft()
            chunk = buffer.take(nbytes)
            if not ev._triggered:
                ev.succeed(chunk)

    def set_data_callback(self, fn: Optional[Callable[["TcpConnection"], None]]) -> None:
        """Register the "socket is readable" callback (used by SysIO)."""
        self._data_callback = fn
        if fn is not None and self._rx_buffer:
            fn(self)

    def set_close_callback(self, fn: Optional[Callable[["TcpConnection"], None]]) -> None:
        self._close_callback = fn

    def available(self) -> int:
        """Bytes currently readable without blocking."""
        return len(self._rx_buffer)

    def read_available(self, limit: Optional[int] = None) -> bytes:
        """Non-blocking read of whatever is buffered (up to ``limit``)."""
        return self._rx_buffer.take(limit)

    def read_iov(self, limit: Optional[int] = None) -> list:
        """Non-blocking scatter-gather read: the buffered chunks by
        reference, without assembling them into one ``bytes`` (bulk sinks
        and relays that never need a flat buffer skip that copy)."""
        return self._rx_buffer.take_iov(limit)

    def recv(self, nbytes: Optional[int] = None) -> "SimEvent":
        """Event completing with at least one byte (up to ``nbytes``)."""
        return self._queue_read(nbytes, exact=False)

    def recv_exact(self, nbytes: int) -> "SimEvent":
        """Event completing with exactly ``nbytes`` bytes (message framing)."""
        return self._queue_read(nbytes, exact=True)

    def _queue_read(self, nbytes: Optional[int], exact: bool) -> "SimEvent":
        ev = self.sim.event(name="tcp-recv")
        if self.closed and not self._rx_buffer:
            ev.fail(TcpError("recv() on closed connection"))
            return ev
        self._pending_reads.append((nbytes, exact, ev))
        self._satisfy_reads()
        return ev

    # -- teardown -----------------------------------------------------------------
    def close(self) -> None:
        """Active close: notify the peer, fail any pending reads there."""
        if self.closed:
            return
        self.closed = True
        tele = self.stack.telemetry
        if tele is not None:
            tele.emit(
                "flow.close",
                flow=self.flow_id,
                sent=self.bytes_sent,
                received=self.bytes_received,
            )
        if self.established and self.peer_conn_id is not None:
            self.network.transmit(
                self.host,
                self.peer_host,
                b"FIN",
                channel=(CH_FIN, self.peer_conn_id),
                send_cost=Cost().charge(self.host.cpu.syscall_overhead, "tcp.close"),
            )
        self.stack._unregister(self)
        self._fail_pending()

    def _fail_pending(self) -> None:
        pending, self._pending_reads = self._pending_reads, deque()
        for _, _, ev in pending:
            if not ev.triggered:
                if self._rx_buffer:
                    ev.succeed(self.read_available())
                else:
                    ev.fail(TcpError("connection closed"))
