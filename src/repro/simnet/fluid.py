"""Fluid-model fast path: collapse stable TCP flows into rate events.

PR 3 made the event kernel cheap and PR 5 sharded it; what remains on the
deployment profile is the *model*: ``TcpConnection._pump`` costs a handful
of events plus frame/delivery/observer machinery per congestion-window
burst, so a bulk stream pays O(bytes / receive_window) heavyweight rounds.
For a flow whose conditions are stable — no loss draws, link parameters
unchanged, no competing sender on its NIC, no churn on the path — every one
of those rounds is fully determined in advance.  This module detects that
stability per connection and advances such flows analytically.

Two fluid tiers, chosen per pump:

``step``
    one analytic round: same gather / loss draw / NIC reservation / window
    update as the packet model, but without constructing ``Frame`` /
    ``Delivery`` objects, demultiplexing through the stack, or charging
    per-layer costs object-by-object.  The arithmetic follows the packet
    path operation-for-operation, so the produced virtual times are
    *float-identical* to the packet model.  Works at any loss rate: the
    loss draw happens first, and a positive draw hands the already-drawn
    round back to the packet path (the RNG stream never forks).

``epoch``
    the closed-form tier: when the window is pinned at the receiver cap,
    the link is loss-free and this flow is the only active sender on its
    NIC, up to ``FluidPolicy.max_epoch_rounds`` rounds are planned in one
    pass — per-round NIC reservations, completion times and the byte
    ledger are computed analytically — and committed immediately.  One
    batched delivery event fires at the epoch's end instead of one per
    burst.  Any churn on the link (via :meth:`Network.invalidate_fluid`)
    rolls the *uncommitted* suffix of the plan back exactly: un-consumed
    bytes return to the send queue, NIC occupancy and window state rewind,
    and the flow resumes in packet mode at the precise virtual time the
    packet model would have pumped next.

Fidelity contract (what "hybrid" guarantees vs pure packet mode):

* delivered byte counts are exactly equal, always;
* virtual completion times are float-identical for step rounds and for
  epochs that run to completion; an epoch interrupted by churn delivers
  its committed prefix at the committed rounds' ready time (bytes exact,
  intermediate availability batched at epoch granularity);
* the per-connection RNG stream is consumed identically, so loss
  sequences — and everything downstream of them — match the packet run;
* passive observers see synthesized ``tcp-burst`` observations carrying a
  ``bursts=N`` weight whose batched estimator update is value-equal to N
  sequential per-burst updates (closed-form EWMA / window fill).

Known, documented divergences: ``Frame`` objects are not constructed (the
frame-id counter is still advanced to keep ids aligned for later frames),
per-burst observation timestamps collapse to the flush time, and a flow
whose endpoints live in different partitions never fluidizes (all fluid
bookkeeping is shard-local by construction).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnet.host import Host
    from repro.simnet.network import Network


@dataclass
class FluidPolicy:
    """Tunable thresholds of the fidelity controller."""

    #: consecutive zero-loss packet rounds before a flow may fluidize.
    stable_rounds: int = 8
    #: upper bound on rounds collapsed into a single epoch plan.
    max_epoch_rounds: int = 64
    #: flush synthesized tcp-burst observations every N accumulated bursts
    #: (epochs always flush at their boundary regardless).
    observation_batch: int = 32
    #: receiver-pressure fallback: drop to packet mode when the peer's
    #: receive buffer exceeds this many receive windows.  The packet model
    #: has no flow control (a large ``recv_exact`` legitimately buffers the
    #: whole transfer), so this only catches a receiver that stopped
    #: reading altogether.
    rx_pressure_windows: int = 64


def steady_state_rate(network: "Network", cwnd: int, receive_window: int,
                      nflows: int = 1) -> float:
    """Analytic steady-state goodput of the window model on a clean link.

    Each round moves ``window = min(cwnd, receive_window)`` payload bytes
    and then waits ``max(rtt, serialization)``; with ``nflows`` active
    senders sharing the NIC the wire occupancy multiplies.  This is the
    rate the packet model converges to and the rate the fluid epoch tier
    realises exactly.
    """
    window = min(cwnd, receive_window)
    if window <= 0:
        return 0.0
    rtt = 2.0 * network.latency
    occupancy = network.serialization_time(window) * max(1, nflows)
    return window / max(rtt, occupancy)


class LinkRateLedger:
    """Per-link registry of active TCP senders and fluidized flows.

    In this model a link is switched full-duplex: transmissions contend
    per *sending NIC* (``Nic.reserve_tx``), not across the whole segment,
    so the capacity share the packet model converges to is
    ``bandwidth / senders_on(host)``.  The ledger tracks exactly that — a
    set of actively-pumping connections per source host — and notifies
    fluidized flows when membership on their NIC changes so they fall back
    to packet mode and re-fluidize under the new contention after another
    stability window.
    """

    def __init__(self, network: "Network") -> None:
        self.network = network
        self._senders: Dict["Host", Set[object]] = {}
        self._fluid: Set["FluidController"] = set()

    # -- membership ---------------------------------------------------------
    def join(self, conn) -> None:
        """A connection started pumping (its send queue went non-empty)."""
        active = self._senders.setdefault(conn.host, set())
        if conn in active:
            return
        active.add(conn)
        self._notify(conn, "flow-join")

    def leave(self, conn) -> None:
        """A connection drained its send queue (or closed)."""
        active = self._senders.get(conn.host)
        if not active or conn not in active:
            return
        active.discard(conn)
        if not active:
            del self._senders[conn.host]
        self._notify(conn, "flow-leave")

    def senders_on(self, host: "Host") -> int:
        return len(self._senders.get(host, ()))

    def sole_sender(self, conn) -> bool:
        return self._senders.get(conn.host) == {conn}

    def fair_share(self, conn) -> float:
        """Capacity share of ``conn`` under the current NIC contention."""
        return self.network.bandwidth / max(1, self.senders_on(conn.host))

    # -- fluid-flow registry -------------------------------------------------
    def register_fluid(self, controller: "FluidController") -> None:
        self._fluid.add(controller)

    def unregister_fluid(self, controller: "FluidController") -> None:
        self._fluid.discard(controller)

    def fluid_count(self) -> int:
        return len(self._fluid)

    def invalidate(self, reason: str) -> None:
        """Link conditions changed: drop every fluidized flow to packet mode."""
        for controller in list(self._fluid):
            controller.invalidate(reason)

    def _notify(self, conn, reason: str) -> None:
        # Contention only changed for flows sharing the joining/leaving
        # connection's NIC; fluid flows elsewhere on the link are unaffected.
        for controller in list(self._fluid):
            other = controller.conn
            if other is not conn and other.host is conn.host:
                controller.invalidate(reason)


def ledger_for(network: "Network") -> LinkRateLedger:
    """The link's rate-share ledger, created lazily on first use."""
    ledger = network.fluid_ledger
    if ledger is None:
        ledger = network.fluid_ledger = LinkRateLedger(network)
    return ledger


# One planned round of an epoch, as a tuple (the epoch tier allocates one
# per collapsed congestion-window round; attribute objects would dominate
# the planning loop).  All times are absolute virtual time.
R_T = 0        # pump time
R_BEGIN = 1    # wire occupancy start
R_END = 2      # wire occupancy end
R_ARRIVAL = 3  # last byte at the peer NIC
R_READY = 4    # data readable by the application
R_NBYTES = 5
R_NPKTS = 6


class _Epoch:
    """A committed multi-round plan, kept until its trailing pump (or churn).

    The plan is stored *run-length encoded*: uniform full-window rounds —
    the overwhelming bulk of a transfer — share one ``runs`` entry and one
    payload view, and the per-round timing tuples exist only transiently,
    replayed from the recorded initial recurrence state when a rollback
    actually needs them (see :meth:`FluidController._materialize_rounds`).
    The replay performs the identical float operations in the identical
    order as the planning loop, so the regenerated rounds are bit-exact.
    """

    __slots__ = (
        "runs",
        "parts",
        "nbytes",
        "completions",
        "deliver_handle",
        "pump_handle",
        "final_tx_free",
        "observed",
        "t0",
        "tx_free0",
        "rx_ready0",
        "rtt",
        "latency",
    )

    def __init__(self, runs, parts, nbytes, completions, deliver_handle,
                 pump_handle, final_tx_free, observed, t0, tx_free0,
                 rx_ready0, rtt, latency):
        #: run-length encoded plan: (count, nbytes, ser, rc, npkts) per run
        self.runs: List[tuple] = runs
        #: zero-copy views into the queued send buffers, in wire order; the
        #: epoch never concatenates them (a 64-round plan would otherwise
        #: materialise a multi-MiB temporary per in-flight flow).
        self.parts: List[memoryview] = parts
        self.nbytes = nbytes
        #: per fully-consumed send, in consumption order:
        #: [end_offset_in_plan, done_event, total, timer_handle_or_None,
        #:  arrival_of_final_byte]
        self.completions = completions
        self.deliver_handle = deliver_handle
        self.pump_handle = pump_handle
        self.final_tx_free = final_tx_free
        #: whether the plan accumulated synthesized observations (observers
        #: were attached at planning time) — a rollback must only rewind the
        #: observation counters when it did, or they go negative.
        self.observed = observed
        #: recurrence state at planning time, for bit-exact replay; rtt and
        #: latency are snapshotted because a rollback is usually *caused by*
        #: a parameter change, and the replay must use the planned values.
        self.t0 = t0
        self.tx_free0 = tx_free0
        self.rx_ready0 = rx_ready0
        self.rtt = rtt
        self.latency = latency


class FluidController:
    """Per-connection fidelity controller (owned by ``TcpConnection``).

    The controller rides the packet pump as a pure observer until
    ``FluidPolicy.stable_rounds`` consecutive zero-loss rounds accumulate
    and the flow is eligible, then takes over the pump.  Any invalidation
    drops it back to observer mode and restarts the stability count.
    """

    def __init__(self, conn, policy: Optional[FluidPolicy] = None) -> None:
        self.conn = conn
        self.policy = policy or FluidPolicy()
        self.active = False
        self._stable = 0
        self._joined = False
        self._ledger: Optional[LinkRateLedger] = None
        self._peer_conn = None
        self._epoch: Optional[_Epoch] = None
        # pending synthesized observations (flushed as one tcp-burst);
        # latency/bandwidth are snapshotted when a batch *starts* so a
        # flush that happens after link churn still reports the parameters
        # the batched rounds actually ran under (any churn invalidates the
        # flow, so a batch never straddles a parameter change).
        self._obs_bursts = 0
        self._obs_npkts = 0
        self._obs_nbytes = 0
        self._obs_latency = 0.0
        self._obs_bandwidth = 0.0
        # introspection / test hooks
        self.activations = 0
        self.fluid_rounds = 0
        self.epochs = 0
        self.epoch_rounds = 0
        self.invalidations: Deque[Tuple[float, str]] = deque(maxlen=32)

    # -- lifecycle hooks called by TcpConnection ----------------------------
    def on_join(self) -> None:
        """The send queue went non-empty: register NIC contention."""
        if not self._joined:
            self._joined = True
            self._ledger = ledger_for(self.conn.network)
            self._ledger.join(self.conn)

    def on_drain(self) -> None:
        """The send queue drained (or the connection closed)."""
        if self._epoch is not None:
            self._finish_epoch()
        self._flush_observations()
        if self._joined:
            self._joined = False
            self._ledger.leave(self.conn)

    def note_packet_round(self, lost_pkts: int) -> None:
        """Observe a packet-mode round; activate after a stable streak."""
        if lost_pkts > 0:
            self._stable = 0
            return
        self._stable += 1
        if (
            not self.active
            and self._stable >= self.policy.stable_rounds
            and self._eligible()
        ):
            self.active = True
            self.activations += 1
            ledger_for(self.conn.network).register_fluid(self)
            tele = self.conn.stack.telemetry
            if tele is not None:
                tele.emit("fluid.activate", flow=self.conn.flow_id)

    # -- eligibility ---------------------------------------------------------
    def _resolve_peer(self):
        peer = self._peer_conn
        if peer is None:
            stack = self.conn.peer_host.get_service("tcp")
            if stack is None or self.conn.peer_conn_id is None:
                return None
            peer = stack._connections.get(self.conn.peer_conn_id)
            self._peer_conn = peer
        return peer

    def _eligible(self) -> bool:
        conn = self.conn
        if conn.closed or not conn.established or conn.peer_conn_id is None:
            return False
        # fluid scheduling touches both endpoints synchronously: keep every
        # fluidized flow shard-local (boundary flows stay packet-mode).
        if conn.host.partition != conn.peer_host.partition:
            return False
        net = conn.network
        if not net.link_alive(conn.host, conn.peer_host):
            return False
        peer = self._resolve_peer()
        if peer is None or peer.closed:
            return False
        # receiver-window pressure: a reader that stopped draining means the
        # steady state is no longer send-side limited — stay honest and slow.
        limit = peer.stack.model.receive_window * self.policy.rx_pressure_windows
        if len(peer._rx_buffer) > limit:
            return False
        return True

    # -- invalidation ---------------------------------------------------------
    def invalidate(self, reason: str) -> None:
        """Synchronous fallback to packet mode (churn, contention, params)."""
        if self._epoch is not None:
            self._rollback_epoch()
        self._deactivate(reason)

    def _deactivate(self, reason: str) -> None:
        if self.active:
            self.active = False
            self.invalidations.append((self.conn.sim.now, reason))
            if self._ledger is not None:
                self._ledger.unregister_fluid(self)
            tele = self.conn.stack.telemetry
            if tele is not None:
                tele.emit("fluid.invalidate", flow=self.conn.flow_id, reason=reason)
        self._stable = 0
        self._flush_observations()

    # -- the pump ------------------------------------------------------------
    def pump(self) -> bool:
        """Run one fluid pump.  Returns False to let the packet path run."""
        if self._epoch is not None:
            # this is the epoch's trailing pump event: the plan is fully
            # committed, close it out and continue from a clean state.
            self._finish_epoch()
        if not self.active:
            return False
        if not self._eligible():
            self._deactivate("conditions-changed")
            return False
        conn = self.conn
        window = min(conn.cwnd, conn.stack.model.receive_window)
        if (
            conn.network.loss_rate <= 0.0
            and conn.cwnd >= conn.stack.model.receive_window
            and self._ledger is not None
            and self._ledger.sole_sender(conn)
            and self._queued_beyond(window)
        ):
            return self._run_epoch(window)
        return self._step_round(window)

    def _queued_beyond(self, window: int) -> bool:
        """True when more than one full window is queued (epochs collapse
        multiple rounds; a window or less is a single step anyway)."""
        queued = 0
        for entry in self.conn._sendq:
            queued += len(entry[0]) - entry[1]
            if queued > window:
                return True
        return False

    # -- step tier -----------------------------------------------------------
    def _step_round(self, window: int) -> bool:
        """One analytic round, float-identical to the packet pump."""
        conn = self.conn
        net = conn.network
        sim = conn.sim
        parts, attempted, finishing = conn._gather_window(window)
        npkts = net.packets_for(attempted)
        lost_pkts = conn._draw_losses(npkts)
        if lost_pkts > 0 or attempted == 0:
            # hand the round — with its already-consumed loss draw — back to
            # the packet path so the fallback round is packet-exact.
            self._deactivate("loss-draw" if lost_pkts else "empty-window")
            conn._packet_round(parts, attempted, finishing, npkts, lost_pkts)
            return True
        self.fluid_rounds += 1
        conn.rounds += 1
        if net._observers:
            self._note_burst(npkts, attempted)

        ser = net.serialization_time(attempted)
        nic = net.nic_of(conn.host)
        begin, end = nic.reserve_tx(sim.now, ser)
        arrival = end + net.latency
        tele = conn.stack.telemetry
        if tele is not None:
            # the link.tx event the packet path's transmit() observer would
            # have produced for this round's frame — same fields, same floats
            tele.emit(
                "link.tx",
                t=begin,
                net=net.name,
                src=conn.host.name,
                dst=conn.peer_host.name,
                nbytes=attempted,
                begin=begin,
                end=end,
                qd=begin - sim.now,
            )
        # views over the (immutable) queued send buffers ride to the peer's
        # receive ring by reference; no per-burst payload is materialised.
        payload = parts[0] if len(parts) == 1 else b"".join(parts)
        conn.bytes_sent += attempted

        # wire accounting the packet path would have done via Frame/transmit
        next(net._frame_counter)
        net.frames_sent += 1
        net.bytes_carried += attempted
        nic.tx_frames += 1
        nic.tx_bytes += attempted
        peer = self._peer_conn
        peer_nic = net.nic_of(conn.peer_host)
        peer_nic.rx_frames += 1
        peer_nic.rx_bytes += attempted

        # receive-side kernel crossing + copy, accumulated in the same float
        # order as Delivery.cost (0.0 + syscall + copy).  The readiness clamp
        # runs at *arrival* time (via _step_deliver), not now: the packet
        # path orders deliveries by updating _last_rx_ready when each frame
        # is processed at the peer, and a frame sent by a packet-mode round
        # can still be in flight at this pump — clamping the watermark early
        # would push that frame's bytes behind this round's.
        cpu = peer.host.cpu
        rc = cpu.syscall_overhead + attempted / cpu.memcpy_bandwidth
        sim.call_at(arrival, self._step_deliver, peer, payload, rc)

        for done, total in finishing:
            if done is None or done.triggered:
                continue
            sim.call_at(arrival, conn._complete_send, done, total)

        conn._update_window(0, attempted)
        if tele is not None:
            tele.emit(
                "flow.round",
                flow=conn.flow_id,
                nbytes=attempted,
                lost=0,
                cwnd=conn.cwnd,
            )
        if conn._sendq:
            wait = max(conn.rtt, ser)
            slack = nic.tx_free_at - sim.now
            if slack > wait:
                wait = slack
            sim.call_later(wait, conn._pump)
        else:
            conn._pumping = False
            self.on_drain()
        return True

    # -- epoch tier ----------------------------------------------------------
    def _run_epoch(self, window: int) -> bool:
        """Plan and commit up to ``max_epoch_rounds`` rounds in closed form.

        Preconditions (checked by :meth:`pump`): zero loss rate, window
        pinned at the receiver cap, sole active sender on the NIC.  Under
        those, every round's timing is the deterministic recurrence
        ``t_{i+1} = t_i + max(rtt, ser_i, tx_free_i - t_i)`` — exactly the
        waits the packet pump would compute — so the plan is committed
        up-front and only *rolled back* if churn arrives mid-epoch.
        """
        conn = self.conn
        net = conn.network
        sim = conn.sim
        nic = net.nic_of(conn.host)
        peer = self._peer_conn
        cpu = peer.host.cpu
        rtt = conn.rtt
        latency = net.latency
        sendq = conn._sendq
        observed = bool(net._observers)

        # constants of the uniform (full-window) rounds, computed with the
        # identical expressions the per-round path uses so the produced
        # floats match bit-for-bit
        w_npkts = net.packets_for(window)
        w_ser = net.serialization_time(window)
        w_rc = cpu.syscall_overhead + window / cpu.memcpy_bandwidth

        runs: List[tuple] = []
        parts_all: List[memoryview] = []
        completions: List[list] = []
        t0 = t = sim.now
        consumed = 0
        rx_ready0 = rx_ready = peer._last_rx_ready
        tx_free0 = tx_free = nic._tx_free_at
        nrounds = 0
        arrival = 0.0  # arrival of the most recently planned round
        max_rounds = self.policy.max_epoch_rounds
        while sendq and nrounds < max_rounds:
            entry = sendq[0]
            view, offset = entry[0], entry[1]
            navail = len(view) - offset
            if navail > window:
                # Uniform stretch: k full windows off the head entry, no
                # send completes — the dominant shape of a bulk transfer.
                # One payload view and one run descriptor cover all k
                # rounds; only the timing recurrence runs per round, with
                # the identical float operations (in the identical order)
                # the per-round path performs.  k leaves at least one byte
                # on the entry so its completion round takes the slow path.
                k = (navail - 1) // window
                if k > max_rounds - nrounds:
                    k = max_rounds - nrounds
                parts_all.append(view[offset : offset + k * window])
                entry[1] = offset + k * window
                runs.append((k, window, w_ser, w_rc, w_npkts))
                nrounds += k
                consumed += k * window
                for _ in range(k):
                    # Nic.reserve_tx, inlined (no competing sender can
                    # interleave while the plan is being laid out)
                    begin = t if t > tx_free else tx_free
                    end = begin + w_ser
                    tx_free = end
                    # == (end + latency) + rc: arrival, then readiness
                    ready = end + latency + w_rc
                    if ready < rx_ready:
                        ready = rx_ready
                    rx_ready = ready
                    # next pump time, exactly as the packet pump computes it
                    wait = rtt if rtt > w_ser else w_ser
                    slack = tx_free - t
                    if slack > wait:
                        wait = slack
                    t = t + wait
                arrival = end + latency
                if observed:
                    if self._obs_bursts == 0:
                        self._obs_latency = latency
                        self._obs_bandwidth = net.bandwidth
                    self._obs_bursts += k
                    self._obs_npkts += k * w_npkts
                    self._obs_nbytes += k * window
                continue
            parts, attempted, finishing = conn._gather_window(window)
            if attempted == 0:
                for done, total in finishing:
                    completions.append([consumed, done, total, None, arrival])
                break
            parts_all.extend(parts)
            npkts = net.packets_for(attempted)
            ser = net.serialization_time(attempted)
            rc = cpu.syscall_overhead + attempted / cpu.memcpy_bandwidth
            begin = t if t > tx_free else tx_free
            end = begin + ser
            tx_free = end
            arrival = end + latency
            ready = arrival + rc
            if ready < rx_ready:
                ready = rx_ready
            rx_ready = ready
            end_off = consumed
            consumed += attempted
            nrounds += 1
            runs.append((1, attempted, ser, rc, npkts))
            for idx, (done, total) in enumerate(finishing):
                # a send completes at the arrival of the round carrying
                # its last byte — this one.  finishing[i] pairs with
                # parts[i] (the gather only ever leaves its *last* part's
                # entry unfinished), so each send records its own end
                # offset: two sends completing in the same round must not
                # share one, or a rollback cutting before this round
                # cannot split the restored bytes between them.
                end_off += len(parts[idx])
                completions.append([end_off, done, total, None, arrival])
            if observed:
                if self._obs_bursts == 0:
                    self._obs_latency = latency
                    self._obs_bandwidth = net.bandwidth
                self._obs_bursts += 1
                self._obs_npkts += npkts
                self._obs_nbytes += attempted
            wait = rtt if rtt > ser else ser
            slack = tx_free - t
            if slack > wait:
                wait = slack
            t = t + wait
        if not nrounds:
            return self._step_round(window)

        # NOTE: no per-round `_update_window` calls — the preconditions pin
        # ``cwnd == receive_window`` (zero loss leaves ssthresh untouched and
        # the additive increase is clamped straight back to the cap), so the
        # packet model's window state is provably unchanged by these rounds.
        nic._tx_free_at = tx_free
        self.epochs += 1
        self.epoch_rounds += nrounds
        self.fluid_rounds += nrounds
        conn.rounds += nrounds
        conn.bytes_sent += consumed
        # wire accounting the packet path would have charged round-by-round
        frame_counter = net._frame_counter
        for _ in range(nrounds):
            next(frame_counter)
        net.frames_sent += nrounds
        net.bytes_carried += consumed
        nic.tx_frames += nrounds
        nic.tx_bytes += consumed
        peer_nic = net.nic_of(conn.peer_host)
        peer_nic.rx_frames += nrounds
        peer_nic.rx_bytes += consumed
        # NOTE: peer._last_rx_ready is advanced by _epoch_deliver when the
        # batched delivery *fires*, not here — a frame sent by a packet-mode
        # round can still be in flight at planning time, and bumping the
        # watermark early would clamp that frame's append behind this
        # epoch's bytes (reordering the peer's byte stream).

        for comp in completions:
            done = comp[1]
            if done is None or done.triggered:
                continue
            comp[3] = sim.call_at(comp[4], conn._complete_send, done, comp[2])
        deliver = sim.call_at(rx_ready, self._epoch_deliver, peer, parts_all)
        pump = sim.call_at(t, conn._pump)
        self._epoch = _Epoch(
            runs, parts_all, consumed, completions, deliver, pump,
            nic.tx_free_at, observed, t0, tx_free0, rx_ready0, rtt, latency,
        )
        # claim the NIC: any competing reserve_tx invalidates this epoch
        # first, so foreign frames never queue behind planned-future rounds
        nic._fluid_holder = self
        return True

    @staticmethod
    def _materialize_rounds(epoch: _Epoch) -> List[tuple]:
        """Replay the planning recurrence into per-round timing tuples.

        Bit-exact with the planning loop: the same float operations in the
        same order, seeded from the recorded initial state and the
        parameters the plan was laid out under (not the current ones — a
        rollback is usually *caused by* a parameter change).
        """
        rtt = epoch.rtt
        latency = epoch.latency
        t = epoch.t0
        tx_free = epoch.tx_free0
        rx_ready = epoch.rx_ready0
        rounds: List[tuple] = []
        for count, nbytes, ser, rc, npkts in epoch.runs:
            for _ in range(count):
                begin = t if t > tx_free else tx_free
                end = begin + ser
                tx_free = end
                arrival = end + latency
                ready = arrival + rc
                if ready < rx_ready:
                    ready = rx_ready
                rx_ready = ready
                rounds.append((t, begin, end, arrival, ready, nbytes, npkts))
                wait = rtt if rtt > ser else ser
                slack = tx_free - t
                if slack > wait:
                    wait = slack
                t = t + wait
        return rounds

    @staticmethod
    def _step_deliver(peer_conn, payload, rc: float) -> None:
        """Arrival-time half of a step round's delivery.

        Runs at the burst's arrival and applies the same readiness clamp the
        packet path's ``_on_segment`` applies when a frame is processed —
        the identical float operations, just evaluated when ``sim.now`` *is*
        the arrival.  Deferring the clamp to arrival time keeps the peer's
        ``_last_rx_ready`` watermark updated in stream order even when a
        packet-mode frame from the round before is still in flight.
        """
        if peer_conn.closed:
            return
        sim = peer_conn.sim
        ready = sim.now + rc
        if ready < peer_conn._last_rx_ready:
            ready = peer_conn._last_rx_ready
        peer_conn._last_rx_ready = ready
        sim.call_at(ready, peer_conn._append_rx, payload)

    @staticmethod
    def _epoch_deliver(peer_conn, parts: List[memoryview]) -> None:
        if peer_conn.closed:
            return
        # the watermark advances now, at delivery time (see the planning-side
        # note): any later delivery must queue behind the whole batch.
        if peer_conn._last_rx_ready < peer_conn.sim.now:
            peer_conn._last_rx_ready = peer_conn.sim.now
        peer_conn._append_rx_parts(parts)

    @staticmethod
    def _slice_parts(parts: List[memoryview], lo: int, hi: int) -> List[memoryview]:
        """Views covering byte range ``[lo, hi)`` of the parts' concatenation."""
        out: List[memoryview] = []
        acc = 0
        for part in parts:
            if acc >= hi:
                break
            n = len(part)
            if acc + n > lo:
                a = lo - acc if lo > acc else 0
                b = hi - acc if hi - acc < n else n
                out.append(part[a:b] if (a, b) != (0, n) else part)
            acc += n
        return out

    def _release_nic(self) -> None:
        nic = self.conn.network.nic_of(self.conn.host)
        if nic._fluid_holder is self:
            nic._fluid_holder = None

    def _finish_epoch(self) -> None:
        self._release_nic()
        epoch, self._epoch = self._epoch, None
        if epoch is not None:
            tele = self.conn.stack.telemetry
            if tele is not None:
                self._emit_epoch_telemetry(tele, epoch, self._materialize_rounds(epoch))
        self._flush_observations()

    def _emit_epoch_telemetry(self, tele, epoch: _Epoch, rounds: List[tuple]) -> None:
        """Emit the per-round ``link.tx`` events the packet model's frames
        would have produced, plus one ``fluid.epoch`` summary.

        Called when an epoch *resolves* (fully commits, or rolls back — then
        with only the committed prefix), never at planning time: rounds that
        are later unwound must not reach the trace, and emission times are
        irrelevant because every event is stamped with its round's planned
        wire time.  The tuples come from ``_materialize_rounds``, so begins
        and ends are bit-identical to the packet model's ``reserve_tx``."""
        conn = self.conn
        net_name = conn.network.name
        src = conn.host.name
        dst = conn.peer_host.name
        nbytes = 0
        for rnd in rounds:
            begin = rnd[R_BEGIN]
            nbytes += rnd[R_NBYTES]
            tele.emit(
                "link.tx",
                t=begin,
                net=net_name,
                src=src,
                dst=dst,
                nbytes=rnd[R_NBYTES],
                begin=begin,
                end=rnd[R_END],
                qd=begin - rnd[R_T],
            )
        if rounds:
            tele.emit(
                "fluid.epoch",
                t=epoch.t0,
                flow=conn.flow_id,
                rounds=len(rounds),
                nbytes=nbytes,
            )

    def _rollback_epoch(self) -> None:
        """Undo the uncommitted suffix of the current epoch, packet-exactly.

        A round is *committed* once its pump time has passed: in the packet
        model its burst is already on the wire, and this model's in-flight
        frames survive link churn (``link_alive`` is checked at transmit
        time only), so committed rounds delivering is exact.  Everything
        later is unwound: bytes return to the send queue, completion events
        are cancelled, NIC occupancy and window state rewind, and the next
        packet pump lands at the uncommitted round's planned time — which
        is the exact time the packet model (having scheduled it with
        pre-churn parameters) would have pumped.
        """
        self._release_nic()
        epoch, self._epoch = self._epoch, None
        conn = self.conn
        sim = conn.sim
        now = sim.now
        rounds = self._materialize_rounds(epoch)
        ncommitted = 0
        for rnd in rounds:
            if rnd[R_T] <= now:
                ncommitted += 1
            else:
                break
        tele = conn.stack.telemetry
        if ncommitted == len(rounds):
            # fully committed: the pending deliver/pump events are already
            # exact; nothing to unwind.
            if tele is not None:
                self._emit_epoch_telemetry(tele, epoch, rounds)
            return

        net = conn.network
        nic = net.nic_of(conn.host)
        peer = self._peer_conn
        peer_nic = net.nic_of(conn.peer_host)
        committed = rounds[:ncommitted]
        uncommitted = rounds[ncommitted:]
        cut = sum(rnd[R_NBYTES] for rnd in committed)
        undone_bytes = epoch.nbytes - cut
        undone_rounds = len(uncommitted)
        if tele is not None:
            # only the committed prefix reaches the trace — the unwound
            # suffix re-runs through the packet path, which emits its own
            # (post-churn) events when those rounds actually happen
            self._emit_epoch_telemetry(tele, epoch, committed)
            tele.emit(
                "fluid.rollback",
                flow=conn.flow_id,
                committed=ncommitted,
                undone=undone_rounds,
                undone_bytes=undone_bytes,
            )

        # sender-side ledger rewind
        conn.bytes_sent -= undone_bytes
        conn.rounds -= undone_rounds
        net.frames_sent -= undone_rounds
        net.bytes_carried -= undone_bytes
        nic.tx_frames -= undone_rounds
        nic.tx_bytes -= undone_bytes
        peer_nic.rx_frames -= undone_rounds
        peer_nic.rx_bytes -= undone_bytes
        if epoch.observed:
            self._obs_bursts -= undone_rounds
            for rnd in uncommitted:
                self._obs_npkts -= rnd[R_NPKTS]
                self._obs_nbytes -= rnd[R_NBYTES]
        # NIC occupancy: release the uncommitted reservations (unless some
        # later transmission already queued behind the epoch).
        if nic.tx_free_at == epoch.final_tx_free:
            nic.rewind_tx(committed[-1][R_END])

        # receive side: replace the batched delivery with the committed
        # prefix (the watermark is advanced by _epoch_deliver when it fires)
        epoch.deliver_handle.cancel()
        ready_c = committed[-1][R_READY]
        sim.call_at(
            max(ready_c, now),
            self._epoch_deliver,
            peer,
            self._slice_parts(epoch.parts, 0, cut),
        )

        # completions: cancel the ones whose last byte was unwound, and
        # return the unsent suffix to the head of the send queue with its
        # per-send completion bookkeeping intact (a send split by the cut
        # keeps its event on the requeued remainder, like a packet-mode
        # retransmit requeue).
        restored: List[list] = []
        start = 0
        for end_off, done, total, handle, _arrival in epoch.completions:
            if end_off > cut:
                if handle is not None:
                    handle.cancel()
                lo = start if start > cut else cut
                # a range may straddle gather fragments; the completion event
                # rides the last restored piece (its final byte).
                pieces = self._slice_parts(epoch.parts, lo, end_off)
                if pieces:
                    for piece in pieces[:-1]:
                        restored.append([piece, 0, None, 0])
                    restored.append([pieces[-1], 0, done, total])
                else:
                    # zero bytes to restore (an empty queued send): keep the
                    # completion alive on an empty entry, as _packet_round's
                    # lost-burst requeue does.
                    restored.append([memoryview(b""), 0, done, total])
            start = end_off
        tail_start = epoch.completions[-1][0] if epoch.completions else 0
        if epoch.nbytes > tail_start:
            # trailing bytes belong to the entry still sitting at the queue
            # head (it was only partially consumed): rewind its offset.
            give_back = epoch.nbytes - (tail_start if tail_start > cut else cut)
            if give_back > 0:
                conn._sendq[0][1] -= give_back
        for entry in reversed(restored):
            conn._sendq.appendleft(entry)

        # resume the packet pump where the packet model would have
        epoch.pump_handle.cancel()
        sim.call_at(uncommitted[0][R_T], conn._pump)

    # -- synthesized observations ---------------------------------------------
    def _note_burst(self, npkts: int, nbytes: int) -> None:
        if self._obs_bursts == 0:
            net = self.conn.network
            self._obs_latency = net.latency
            self._obs_bandwidth = net.bandwidth
        self._obs_bursts += 1
        self._obs_npkts += npkts
        self._obs_nbytes += nbytes
        if self._obs_bursts >= self.policy.observation_batch and self._epoch is None:
            self._flush_observations()

    def _flush_observations(self) -> None:
        bursts = self._obs_bursts
        if not bursts:
            return
        npkts, nbytes = self._obs_npkts, self._obs_nbytes
        self._obs_bursts = self._obs_npkts = self._obs_nbytes = 0
        net = self.conn.network
        if net._observers:
            # One weighted observation standing in for `bursts` per-burst
            # ones: zero-loss by construction (a loss draw ends fluid mode
            # before it is ever batched), with the frame-timing fields the
            # packet path's real frames would have exposed.
            net._observe(
                "tcp-burst",
                npkts=npkts,
                lost_pkts=0,
                nbytes=nbytes,
                bursts=bursts,
                fluid=True,
                latency=self._obs_latency,
                bandwidth=self._obs_bandwidth,
            )
