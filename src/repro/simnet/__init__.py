"""Discrete-event network simulation substrate.

This package replaces the hardware of the PadicoTM evaluation platform
(dual-PIII cluster, Myrinet-2000, Ethernet-100, the VTHD WAN and a lossy
trans-continental Internet path) with a deterministic discrete-event
simulator.  Everything above it — the Madeleine-like library, the NetAccess
arbitration layer, the VLink/Circuit abstractions, the personalities and the
middleware systems — is real code that moves real bytes; only the *wire* is
simulated, with latency / bandwidth / loss models calibrated against the
figures reported in the paper.

Main entry points
-----------------
:class:`~repro.simnet.engine.Simulator`
    The event loop: virtual clock, event heap, generator-based processes.
:class:`~repro.simnet.host.Host`
    A simulated machine (CPU cost model + attached NICs).
:mod:`repro.simnet.networks`
    Calibrated network models (:class:`Myrinet2000`, :class:`Ethernet100`,
    :class:`WanVthd`, :class:`LossyInternet`, ...).
:class:`~repro.simnet.tcp.TcpConnection`
    Round-based TCP throughput model used by the SysIO arbitration driver.
"""

from repro.simnet.engine import (
    Simulator,
    SimEvent,
    Timeout,
    Process,
    AllOf,
    AnyOf,
    SimulationError,
)
from repro.simnet.partition import PartitionedSimulator, LookaheadViolation
from repro.simnet.cost import Cost
from repro.simnet.host import Host, CpuModel
from repro.simnet.network import Network, Nic, Frame, Delivery
from repro.simnet.networks import (
    Myrinet2000,
    SciNetwork,
    Ethernet100,
    GigabitEthernet,
    WanVthd,
    LossyInternet,
    Loopback,
)
from repro.simnet.tcp import TcpStack, TcpConnection, TcpListener, TcpModel
from repro.simnet.trace import Trace, TraceRecord, Counter

__all__ = [
    "Simulator",
    "SimEvent",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "SimulationError",
    "PartitionedSimulator",
    "LookaheadViolation",
    "Cost",
    "Host",
    "CpuModel",
    "Network",
    "Nic",
    "Frame",
    "Delivery",
    "Myrinet2000",
    "SciNetwork",
    "Ethernet100",
    "GigabitEthernet",
    "WanVthd",
    "LossyInternet",
    "Loopback",
    "TcpStack",
    "TcpConnection",
    "TcpListener",
    "TcpModel",
    "Trace",
    "TraceRecord",
    "Counter",
]
