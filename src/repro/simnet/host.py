"""Simulated hosts (grid nodes) and their CPU cost model.

A :class:`Host` stands for one machine of the deployment — in the paper's
platform a dual Pentium III 1 GHz node with 512 MB RAM.  The host carries

* a :class:`CpuModel` describing the software-side costs that every layer
  charges through :class:`repro.simnet.cost.Cost` (memory-copy bandwidth,
  system-call overhead, interrupt/callback dispatch overhead),
* the set of :class:`~repro.simnet.network.Nic` attached to it, keyed by
  network, and
* a per-host *service registry* used by the upper layers (NetAccess core,
  TCP stack, Madeleine driver, middleware runtimes) to find each other —
  the simulated equivalent of process-wide singletons inside one PadicoTM
  process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, TYPE_CHECKING

from repro.simnet.cost import MB, MICROSECOND

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnet.engine import Simulator
    from repro.simnet.network import Network, Nic


@dataclass
class CpuModel:
    """Per-host software cost parameters.

    The defaults are calibrated to the paper's nodes (PIII 1 GHz, Linux 2.2):

    * ``memcpy_bandwidth`` — a straight ``memcpy`` of already-cached data on
      that class of machine sustains a few hundred MB/s; 800 MB/s is used for
      plain buffer copies (network stack copies, packing copies).
    * ``syscall_overhead`` — one kernel crossing (socket send/recv path).
    * ``callback_overhead`` — dispatching one user-level callback (the
      NetAccess layer is callback-based, "à la Active Message").
    * ``thread_switch_overhead`` — a user-level thread switch in the
      Marcel-like scheduler PadicoTM relies on.
    """

    name: str = "pentium3-1GHz"
    memcpy_bandwidth: float = 800.0 * MB
    syscall_overhead: float = 2.0 * MICROSECOND
    callback_overhead: float = 0.05 * MICROSECOND
    thread_switch_overhead: float = 0.6 * MICROSECOND
    interrupt_overhead: float = 4.0 * MICROSECOND

    def copy_time(self, nbytes: int) -> float:
        """Seconds to copy ``nbytes`` once at ``memcpy_bandwidth``."""
        return nbytes / self.memcpy_bandwidth


class Host:
    """One simulated machine of the grid deployment."""

    def __init__(self, sim: "Simulator", name: str, cpu: Optional[CpuModel] = None):
        self.sim = sim
        self.name = name
        self.cpu = cpu or CpuModel()
        self.nics: Dict["Network", "Nic"] = {}
        self._services: Dict[str, Any] = {}
        self._labels: Dict[str, str] = {}
        #: physical liveness; a dead host neither sends nor receives frames.
        #: Flipped by the churn injector (:mod:`repro.monitoring.churn`).
        self.up = True
        #: event-loop partition this host's stack executes in (meaningful on
        #: a partitioned kernel; assigned by the deployment builder, e.g.
        #: :func:`repro.simnet.networks.grid_deployment`).
        self.partition = 0

    # -- NIC management ------------------------------------------------------
    def attach_nic(self, nic: "Nic") -> None:
        """Register a NIC created by :meth:`Network.connect`."""
        if nic.network in self.nics:
            raise ValueError(f"host {self.name!r} already attached to network {nic.network.name!r}")
        self.nics[nic.network] = nic
        # Bump the simulator-wide topology epoch so generation-stamped caches
        # (TopologyKB link profiles, RoutingEngine routes) see late attachments.
        self.sim.topology_epoch = getattr(self.sim, "topology_epoch", 0) + 1

    def nic_for(self, network: "Network") -> "Nic":
        """The NIC of this host on ``network`` (KeyError if not attached)."""
        return self.nics[network]

    def networks(self):
        """All networks this host is attached to."""
        return list(self.nics.keys())

    def is_attached(self, network: "Network") -> bool:
        return network in self.nics

    def shares_network_with(self, other: "Host"):
        """Networks common to ``self`` and ``other`` (used by the selector)."""
        return [net for net in self.nics if other.is_attached(net)]

    # -- service registry ------------------------------------------------------
    def register_service(self, key: str, service: Any, replace: bool = False) -> Any:
        """Publish a per-host singleton (e.g. ``"netaccess"``, ``"tcp"``)."""
        if not replace and key in self._services:
            raise ValueError(f"service {key!r} already registered on host {self.name!r}")
        self._services[key] = service
        return service

    def get_service(self, key: str, default: Any = None) -> Any:
        return self._services.get(key, default)

    def require_service(self, key: str) -> Any:
        """Like :meth:`get_service` but raises a clear error when missing."""
        try:
            return self._services[key]
        except KeyError:
            raise LookupError(
                f"host {self.name!r} has no service {key!r}; "
                f"available: {sorted(self._services)}"
            ) from None

    def has_service(self, key: str) -> bool:
        return key in self._services

    # -- labels (free-form metadata used by the topology knowledge base) -------
    def set_label(self, key: str, value: str) -> None:
        self._labels[key] = value

    def get_label(self, key: str, default: str = "") -> str:
        return self._labels.get(key, default)

    @property
    def site(self) -> str:
        """Administrative site of the host (used for WAN/secure-link decisions)."""
        return self._labels.get("site", "default-site")

    @site.setter
    def site(self, value: str) -> None:
        self._labels["site"] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nets = ",".join(net.name for net in self.nics)
        return f"<Host {self.name} nets=[{nets}]>"


@dataclass
class HostGroup:
    """A named, ordered set of hosts (a cluster, a site, or an ad-hoc group).

    Mirrors the paper's notion of a Circuit *group*: "an arbitrary set of
    nodes, e.g. a cluster, a subset of a cluster, may span across multiple
    clusters or even multiple sites".
    """

    name: str
    hosts: list = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [h.name for h in self.hosts]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate host in group {self.name!r}: {names}")

    def __len__(self) -> int:
        return len(self.hosts)

    def __iter__(self):
        return iter(self.hosts)

    def __getitem__(self, idx: int) -> Host:
        return self.hosts[idx]

    def index_of(self, host: Host) -> int:
        """Rank of ``host`` inside the group."""
        for i, h in enumerate(self.hosts):
            if h is host:
                return i
        raise ValueError(f"host {host.name!r} not in group {self.name!r}")

    def contains(self, host: Host) -> bool:
        return any(h is host for h in self.hosts)

    def sites(self):
        """Distinct administrative sites spanned by the group."""
        seen = []
        for h in self.hosts:
            if h.site not in seen:
                seen.append(h.site)
        return seen
