"""Process-pool executor: one worker process per partition, multi-core.

The executor implements the :meth:`run_window` contract of
:class:`~repro.simnet.partition.PartitionedSimulator` with a pool of
forked worker processes.  The design is *replicated construction, sharded
execution*:

* Every worker holds a **full replica** of the deployment object graph —
  inherited via ``fork`` at the first ``run()`` (or rebuilt from a
  declarative build spec, see :meth:`ProcessPoolExecutor.set_build_spec`)
  — but *executes* only its own partition's shard.  Other shards in a
  replica are frozen construction-time state.
* Cross-shard traffic is the **boundary-mailbox stream**: outgoing
  entries are wire-encoded (frame fields by value, hosts/networks by
  their deterministic names — see :class:`_WireCodec`), shipped to the
  parent in the window report, merged by the parent with the same
  ``(when, sent_at, src_partition, src_seq)`` sort as the round-robin
  executor, and routed to the destination worker with the next window
  command.  The window barrier is the pipe round-trip.
* **Barrier-riding control plane**: barrier hooks and barrier-bus
  consumers registered at construction time exist identically in every
  replica; the parent additionally fans out (a) hooks registered by shard
  model code mid-run (wire-encoded, sequenced after local hooks at the
  same edge) and (b) the merged barrier-bus batch of each window, so
  every replica replays the identical barrier schedule at the start of
  its next window.  Telemetry shard buffers are shipped in the window
  report and re-stamped by the parent hub, reproducing the round-robin
  ``(t, p, s)`` merge byte-for-byte.
* The parent's own shards never execute: their queues are cleared at
  fork ("shadow" shards) so that anything scheduled *by barrier context
  code in the parent* is visible to the window-sizing logic for exactly
  one window, after which the owning worker's report subsumes it.

``run(until=event)`` works through a **shadow event watcher**: watched
events are named by construction-order uid, workers report triggers
``(uid, ok, value)`` at the barrier, and the parent resolves composite
``AllOf``/``AnyOf`` targets from child outcomes (see :class:`_EventWatcher`).

One asymmetry of the replication model: *scheduling* from parent
barrier-context code ships to the owning worker with the next window (the
shadow-shard path above), but **cancelling** a pre-fork timer from the
parent does not — a :class:`~repro.simnet.engine.TimerHandle` has no
cross-address-space identity (timers are the hot path; only events carry
uids).  The parent-side cancel marks the local handle and bumps the
cancellation counter exactly as the round-robin executor would, but the
worker replica's twin timer stays live, so ``pending_count()`` may read
one higher than round-robin after e.g. ``TopologyMonitor.stop()`` between
runs, and the orphaned timer still fires if the run continues.  Cancel
from model code inside the owning shard (or stop probes before the fork /
after the final run) for executor-identical behaviour.

Requires the ``fork`` start method (POSIX).  The pool persists across
``run()`` calls; release it with ``PartitionedSimulator.shutdown()`` (a
finalizer reaps leaked pools).
"""

from __future__ import annotations

import heapq
import itertools
import os
import pickle
import traceback
import weakref
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.simnet.engine import AllOf, AnyOf, SimEvent, SimStats, SimulationError
from repro.simnet.network import Frame, Nic

__all__ = ["ProcessPoolExecutor"]

#: sequence base for barrier hooks fanned out from worker shard code: far
#: above any locally-registered hook's sequence, so at an equal ``when``
#: every replica orders local (construction/barrier-context) hooks before
#: fanned (mid-run shard-context) ones.
_FAN_SEQ_BASE = 1 << 40


class _Unpicklable:
    """Placeholder for a trigger value that could not cross the pipe."""

    __slots__ = ("repr",)

    def __init__(self, rep: str) -> None:
        self.repr = rep

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<unpicklable {self.repr}>"


def _safe_value(value: Any) -> Any:
    """``value`` if it pickles, else an :class:`_Unpicklable` marker."""
    try:
        pickle.dumps(value)
        return value
    except Exception:
        return _Unpicklable(repr(value))


def _contains_unpicklable(value: Any) -> Optional[_Unpicklable]:
    if isinstance(value, _Unpicklable):
        return value
    if isinstance(value, (list, tuple)):
        for item in value:
            found = _contains_unpicklable(item)
            if found is not None:
                return found
    return None


class _WireCodec:
    """Encode/decode mailbox callbacks for the cross-process pipes.

    Two wire kinds:

    ``("f", net_name, rx_host_name, frame_fields)``
        A frame delivery (``Nic.handle_arrival``) — the overwhelmingly
        common cross-partition callback.  Encoded structurally: payload
        bytes by value, hosts and networks by their deterministic names,
        resolved against the receiving replica's boundary-network
        registry.

    ``("h", name, args)``
        A scenario-level callback registered with
        :meth:`~repro.simnet.engine.Simulator.register_wire_handler`;
        ``args`` must pickle.
    """

    def __init__(self, sim) -> None:
        self.sim = sim
        self._nets: Dict[str, Any] = {}
        self._hosts: Dict[str, Dict[str, Any]] = {}

    def rebuild(self) -> None:
        self._nets = {net.name: net for net in self.sim.boundary_networks()}
        self._hosts = {
            name: {host.name: host for host in net.nics}
            for name, net in self._nets.items()
        }

    def encode(self, fn: Callable, args: tuple) -> Tuple:
        bound = getattr(fn, "__self__", None)
        if bound is not None and getattr(fn, "__func__", None) is Nic.handle_arrival:
            frame, arrival = args
            payload = frame.payload
            if not isinstance(payload, bytes):
                payload = bytes(payload)
            return (
                "f",
                bound.network.name,
                bound.host.name,
                (
                    frame.frame_id,
                    frame.src.name,
                    frame.dst.name,
                    frame.channel,
                    payload,
                    dict(frame.meta),
                    arrival,
                ),
            )
        name = self.sim._wire_names.get(fn)
        if name is not None:
            return ("h", name, args)
        raise SimulationError(
            f"cannot wire-encode cross-partition callback {fn!r} for "
            "executor='process': frame deliveries are encoded structurally; "
            "any other callback crossing a partition boundary must be named "
            "with Simulator.register_wire_handler(name, fn) at deployment time"
        )

    def decode(self, wire: Tuple) -> Tuple[Callable, tuple]:
        kind = wire[0]
        if kind == "f":
            _, net_name, rx_name, fields = wire
            net = self._nets.get(net_name)
            if net is None:
                self.rebuild()
                net = self._nets.get(net_name)
            if net is None:
                raise SimulationError(
                    f"wire decode: no boundary network named {net_name!r} in this replica"
                )
            hosts = self._hosts[net_name]
            frame_id, src_name, dst_name, channel, payload, meta, arrival = fields
            try:
                src, dst, rx = hosts[src_name], hosts[dst_name], hosts[rx_name]
            except KeyError as exc:
                raise SimulationError(
                    f"wire decode: host {exc.args[0]!r} not attached to {net_name!r}"
                ) from None
            frame = Frame(
                frame_id=frame_id,
                src=src,
                dst=dst,
                network=net,
                channel=channel,
                payload=payload,
                meta=meta,
            )
            return net.nics[rx].handle_arrival, (frame, arrival)
        if kind == "h":
            _, name, args = wire
            fn = self.sim._wire_handlers.get(name)
            if fn is None:
                raise SimulationError(
                    f"wire decode: no handler registered under {name!r} in this "
                    "replica (register_wire_handler must run at construction time)"
                )
            return fn, args
        raise SimulationError(f"unknown wire kind {kind!r}")


class _EventWatcher:
    """Shadow-resolve ``run(until=event)`` targets across address spaces.

    The parent's copy of a watched event never triggers (events trigger
    inside worker replicas), so the executor watches the *uids* of the
    target's untriggered leaves; workers report ``(uid, ok, value)`` when
    a watched event triggers, and the watcher re-derives composite
    ``AllOf``/``AnyOf`` outcomes from child outcomes.  One documented
    divergence: when two ``AnyOf`` children trigger within the same
    window, the watcher resolves to the lowest child index rather than
    the earliest trigger (the per-window report has no intra-window
    order); both are legal model outcomes.
    """

    def __init__(self, executor: "ProcessPoolExecutor", sim, event: SimEvent) -> None:
        self.executor = executor
        self.sim = sim
        self.event = event
        self._done = False
        self._outcome: Optional[Tuple[bool, Any]] = None
        leaves: List[SimEvent] = []
        self._collect_leaves(event, leaves)
        limit = executor._fork_uid_limit
        uids = []
        for ev in leaves:
            uid = getattr(ev, "uid", None)
            if uid is None or (limit is not None and uid >= limit):
                raise SimulationError(
                    "executor='process' can only wait on events the worker "
                    "replicas hold a copy of, i.e. events created before the "
                    f"first run(); {ev!r} was created after the workers forked"
                )
            uids.append(uid)
        executor._watch(uids)
        self._refresh()

    def _collect_leaves(self, ev: SimEvent, out: List[SimEvent]) -> None:
        if ev._triggered:
            return
        if isinstance(ev, (AllOf, AnyOf)):
            for child in ev._children:
                self._collect_leaves(child, out)
        else:
            out.append(ev)

    # -- resolution ---------------------------------------------------------
    @property
    def done(self) -> bool:
        if not self._done:
            self._refresh()
        return self._done

    def outcome(self) -> Tuple[bool, Any]:
        ok, value = self._outcome
        bad = _contains_unpicklable(value)
        if bad is not None:
            raise SimulationError(
                "the watched event's value could not be shipped across "
                f"processes: {bad.repr} is not picklable"
            )
        return ok, value

    def _refresh(self) -> None:
        status, value = self._resolve(self.event)
        if status == "ok":
            self._done, self._outcome = True, (True, value)
        elif status == "fail":
            self._done, self._outcome = True, (False, value)

    def _resolve(self, ev: SimEvent) -> Tuple[str, Any]:
        if ev._triggered:
            # the parent replica's own copy resolved (pre-run trigger, or a
            # parent-side barrier hook triggered it directly)
            return ("ok", ev.value) if ev.ok else ("fail", ev.value)
        if isinstance(ev, AllOf):
            values: List[Any] = []
            pending = False
            for child in ev._children:
                status, value = self._resolve(child)
                if status == "fail":
                    return "fail", value
                if status == "pending":
                    pending = True
                else:
                    values.append(value)
            return ("pending", None) if pending else ("ok", values)
        if isinstance(ev, AnyOf):
            for idx, child in enumerate(ev._children):
                status, value = self._resolve(child)
                if status == "ok":
                    return "ok", (idx, value)
                if status == "fail":
                    return "fail", value
            return "pending", None
        hit = self.executor._triggered.get(getattr(ev, "uid", None))
        if hit is None:
            return "pending", None
        ok, value = hit
        return ("ok", value) if ok else ("fail", value)


class ProcessPoolExecutor:
    """One forked worker process per partition; windows over pipes.

    Per window the parent sends each worker a ``("w", window_end,
    prev_edge, entries, bus_fan, hook_fan, watch_new)`` command — its
    sorted incoming mailbox entries plus the barrier-control fan-out of
    the previous edge — and the workers execute their shards
    *concurrently* (this is where the speedup lives).  The parent then
    receives one report per worker in partition order and re-merges:
    outgoing mailbox entries, barrier-bus publications, hook ships,
    event triggers, telemetry buffers and kernel counters.
    """

    name = "process"
    #: PartitionedSimulator installs the event-uid tracker for us
    needs_event_uids = True
    is_process = True

    def __init__(self) -> None:
        self._procs: Optional[List[Any]] = None
        self._conns: Optional[List[Any]] = None
        self._codec: Optional[_WireCodec] = None
        self._finalizer = None
        self._build_spec: Optional[Tuple[Callable, tuple]] = None
        # routed-but-unshipped mailbox entries, per destination partition:
        # (when, sent_at, src_partition, src_seq, wire)
        self._pending: Optional[List[List[Tuple]]] = None
        self._next_times: Optional[List[Optional[float]]] = None
        self._bus_out: List[Tuple] = []
        self._hook_fan: List[Tuple] = []
        self._fan_counter = itertools.count()
        self._watch_new: List[int] = []
        self._triggered: Dict[int, Tuple[bool, Any]] = {}
        self._fork_uid_limit: Optional[int] = None
        self._prev_edge: Optional[float] = None
        self._stats: Optional[List[SimStats]] = None
        self._stat_ship_base: Optional[List[SimStats]] = None
        self._live: Optional[List[int]] = None
        self._drift_base: Optional[List[int]] = None
        self._watcher: Optional[_EventWatcher] = None
        self._profiling = False

    # -- configuration ------------------------------------------------------
    def set_build_spec(self, fn: Callable, *args: Any) -> None:
        """Have each worker *rebuild* the deployment instead of inheriting
        the parent's copy-on-write fork image.  ``fn(*args)`` must
        deterministically construct the scenario — returning the simulator
        or an object with a ``.sim`` attribute — with
        ``executor="process"`` and the same partition count.  Must be set
        before the first :meth:`run_window` (i.e. before the first
        ``run()``)."""
        if self._procs is not None:
            raise SimulationError("set_build_spec must be called before the first run()")
        self._build_spec = (fn, args)

    def _watch(self, uids: List[int]) -> None:
        for uid in uids:
            if uid not in self._triggered:
                self._watch_new.append(uid)

    def make_watcher(self, psim, event: SimEvent) -> _EventWatcher:
        self._watcher = _EventWatcher(self, psim, event)
        return self._watcher

    # -- lifecycle ----------------------------------------------------------
    def on_run_start(self, psim) -> None:
        self._ensure_started(psim)
        if self._drift_base is not None:
            current = [shard._seq for shard in psim._shards]
            if current != self._drift_base:
                raise SimulationError(
                    "executor='process' does not support scheduling between "
                    "run() calls: the worker replicas would never see those "
                    "events (the parent's shards are shadows).  Schedule "
                    "before the first run(), or from model/barrier code "
                    "during a run."
                )
        self._codec.rebuild()

    def _ensure_started(self, psim) -> None:
        if self._procs is not None:
            return
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            raise SimulationError(
                "executor='process' requires the fork start method (POSIX); "
                "use executor='thread' or 'round-robin' on this platform"
            )
        ctx = multiprocessing.get_context("fork")
        # burn one uid: every event the replicas inherit a copy of sits
        # strictly below this, which is what _EventWatcher checks.
        self._fork_uid_limit = next(psim._event_uid_counter)
        self._codec = _WireCodec(psim)
        n = psim.partition_count
        procs, conns = [], []
        for i in range(n):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(psim, self._build_spec, i, child_conn),
                name=f"sim-shard-{i}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            procs.append(proc)
            conns.append(parent_conn)
        self._procs, self._conns = procs, conns
        self._finalizer = weakref.finalize(self, _shutdown_workers, procs, conns)
        # snapshot next-event times from the (still intact, replica-identical)
        # parent shards, then shadow them: from here on a parent shard's
        # queue only ever holds what barrier-context code schedules.
        self._pending = [[] for _ in range(n)]
        self._next_times = [shard.next_event_time() for shard in psim._shards]
        for shard in psim._shards:
            _clear_shadow_queue(shard)
        if self._profiling:
            for conn in conns:
                conn.send(("ps",))

    def close(self) -> None:
        """End-of-run hook: a no-op — the pool persists across run() calls
        (multi-phase scenarios reuse it); see :meth:`shutdown`."""

    def shutdown(self) -> None:
        procs, conns = self._procs, self._conns
        self._procs = self._conns = None
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if procs is not None:
            _shutdown_workers(procs, conns)

    # -- the window ----------------------------------------------------------
    def run_window(self, psim, shards, window_end: float) -> None:
        conns = self._conns
        prev_edge = self._prev_edge
        bus_fan = psim._bus_last_drain
        psim._bus_last_drain = None
        hook_fan, self._hook_fan = self._hook_fan, []
        watch_new, self._watch_new = self._watch_new, []
        # snapshot parent (barrier-context) counters at ship time: replica
        # reports include barrier replays only up to this point, so stats
        # gathered at the coming edge add the parent's bumps past it
        # (see partition_stats)
        self._stat_ship_base = [shard.stats() for shard in shards]
        for p, conn in enumerate(conns):
            entries = self._pending[p]
            wire_entries: List[Tuple] = []
            if entries:
                entries.sort(key=lambda e: e[:4])
                psim.mailbox_deliveries += len(entries)
                wire_entries = [(e[0], e[4]) for e in entries]
                self._pending[p] = []
            conn.send(("w", window_end, prev_edge, wire_entries, bus_fan, hook_fan, watch_new))
        self._prev_edge = window_end

        errors: List[Tuple[int, BaseException]] = []
        hook_ships: List[Tuple] = []
        stats: List[Optional[SimStats]] = [None] * len(shards)
        live: List[int] = [0] * len(shards)
        hub = psim.telemetry
        for p, conn in enumerate(conns):
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                errors.append(
                    (p, SimulationError(f"worker process for partition {p} died mid-window"))
                )
                continue
            if msg[0] == "e":
                errors.append((p, _rebuild_error(p, msg)))
                continue
            (
                _,
                shard_now,
                next_t,
                out_entries,
                bus,
                ships,
                triggers,
                stats_dict,
                shard_live,
                telem,
                stopped,
            ) = msg
            shards[p]._now = shard_now
            self._next_times[p] = next_t
            for dst, when, sent_at, src_idx, src_seq, wire in out_entries:
                self._pending[dst].append((when, sent_at, src_idx, src_seq, wire))
            for i, (key, payload) in enumerate(bus):
                self._bus_out.append((p, i, key, payload))
            for when, ship_seq, wire in ships:
                hook_ships.append((when, p, ship_seq, wire))
            for uid, ok, value in triggers:
                self._triggered[uid] = (ok, value)
            stats[p] = SimStats(**stats_dict)
            live[p] = shard_live
            if telem and hub is not None:
                hub.absorb_worker_events(telem)
            if stopped:
                psim._p_stopped = True
        if errors:
            errors.sort(key=lambda e: e[0])
            raise errors[0][1]
        # mid-run shard-context call_at_barrier registrations: decode into
        # the parent's heap and fan to every replica next window, sequenced
        # deterministically after all locally-registered hooks at the edge
        if hook_ships:
            hook_ships.sort(key=lambda e: (e[0], e[1], e[2]))
            for when, _src_p, _ship_seq, wire in hook_ships:
                seq = _FAN_SEQ_BASE + next(self._fan_counter)
                fn, args = self._codec.decode(wire)
                heapq.heappush(psim._barrier_hooks, (when, seq, fn, args))
                self._hook_fan.append((when, seq, wire))
        self._stats = stats
        self._live = live
        # anything barrier-context code scheduled into the parent's shadow
        # shards before this window is now owned by a worker replica's live
        # queue (its report's next_t covers it) — drop the shadow copies so
        # they cannot pin the window start in the past.
        for shard in shards:
            _clear_shadow_queue(shard)

    # -- facade hooks --------------------------------------------------------
    def take_bus(self, psim) -> Optional[List[Tuple]]:
        out, self._bus_out = self._bus_out, []
        if not out:
            return None
        # worker publications sort after the parent's local barrier-context
        # publications of the same partition, exactly as the round-robin
        # shard buffers would interleave them
        offsets = [len(buf) for buf in psim._bus_buffers]
        return [(p, i + offsets[p], key, payload) for p, i, key, payload in out]

    def next_event_time(self, psim) -> Optional[float]:
        best = None
        if self._next_times is not None:
            for t in self._next_times:
                if t is not None and (best is None or t < best):
                    best = t
            for box in self._pending:
                for entry in box:
                    if best is None or entry[0] < best:
                        best = entry[0]
            # shadow shards: barrier-context code scheduled these since the
            # last report; visible here for exactly one window (see run_window)
            for shard in psim._shards:
                t = shard.next_event_time()
                if t is not None and (best is None or t < best):
                    best = t
        else:
            for shard in psim._shards:
                t = shard.next_event_time()
                if t is not None and (best is None or t < best):
                    best = t
        return best

    def pending_live(self, psim) -> Optional[int]:
        if self._live is None:
            return None
        return sum(self._live) + sum(len(box) for box in self._pending)

    def partition_stats(self, psim) -> Optional[List[SimStats]]:
        """Worker-reported counters plus the parent's barrier-context bumps
        since the last window ship — exactly the counters the round-robin
        executor's shared shards would read at this barrier.  ``peak_pending``
        and ``events_processed`` are execution-side by nature (barrier code
        runs on the facade, not through shard queues), so their parent deltas
        are structurally zero; summed fields get the correction."""
        if self._stats is None:
            return None
        merged: List[SimStats] = []
        for p, st in enumerate(self._stats):
            cur = psim._shards[p].stats()
            base = self._stat_ship_base[p]
            # routed-but-unshipped mailbox entries: the round-robin barrier
            # would already have merged these into shard p's queue (one
            # timer each), so count them now — the worker's own counter
            # takes over when the entries ship with the next window
            inflight = len(self._pending[p])
            merged.append(
                SimStats(
                    events_processed=st.events_processed
                    + cur.events_processed
                    - base.events_processed,
                    timers_scheduled=st.timers_scheduled
                    + cur.timers_scheduled
                    - base.timers_scheduled
                    + inflight,
                    cancellations=st.cancellations + cur.cancellations - base.cancellations,
                    peak_pending=st.peak_pending,
                    wheel_rebuilds=st.wheel_rebuilds
                    + cur.wheel_rebuilds
                    - base.wheel_rebuilds,
                )
            )
        return merged

    def collect(self, psim, name: str) -> Optional[List[Any]]:
        if self._conns is None:
            return None
        for conn in self._conns:
            conn.send(("c", name))
        results = []
        for p, conn in enumerate(self._conns):
            msg = conn.recv()
            if msg[0] == "e":
                raise _rebuild_error(p, msg)
            results.append(msg[1])
        return results

    def on_run_end(self, psim) -> None:
        if self._conns is None:
            return
        # the facade may have committed a common clock (natural exhaustion,
        # run-until-time): broadcast it so replica shard clocks agree for
        # relative scheduling in later runs
        times = [shard._now for shard in psim._shards]
        for conn in self._conns:
            conn.send(("t", times, psim._time))
        self._drift_base = [shard._seq for shard in psim._shards]

    # -- profiling -----------------------------------------------------------
    def begin_profile(self) -> None:
        self._profiling = True
        if self._conns is not None:
            for conn in self._conns:
                conn.send(("ps",))

    def end_profile(self) -> Optional[List[Optional[dict]]]:
        self._profiling = False
        if self._conns is None:
            return None
        for conn in self._conns:
            conn.send(("pe",))
        results = []
        for p, conn in enumerate(self._conns):
            msg = conn.recv()
            if msg[0] == "e":
                raise _rebuild_error(p, msg)
            results.append(msg[1])
        return results


def _rebuild_error(p: int, msg: Tuple) -> BaseException:
    """Reconstruct a worker-side exception from an ``("e", ...)`` reply,
    preserving the original type when it pickles (so LookaheadViolation et
    al. propagate as themselves) and attaching the worker traceback."""
    _, blob, rep, tb = msg
    exc: Optional[BaseException] = None
    if blob is not None:
        try:
            exc = pickle.loads(blob)
        except Exception:
            exc = None
    if exc is None:
        exc = SimulationError(f"worker process for partition {p} failed: {rep}")
    note = f"[worker {p} traceback]\n{tb}"
    add_note = getattr(exc, "add_note", None)
    if add_note is not None:
        add_note(note)
    return exc


def _clear_shadow_queue(shard) -> None:
    """Empty a parent-side shadow shard's timer structures in place.

    The shard never executes in the parent once workers exist; clearing
    (without running anything) makes ``next_event_time`` report only what
    barrier-context code scheduled since the last clear."""
    shard._ready.clear()
    shard._buckets = [[] for _ in range(shard._nbuckets)]
    shard._wheel_count = 0
    shard._epoch = None
    shard._cursor = -1
    shard._batch = []
    shard._batch_pos = 0
    shard._imminent = []
    shard._head_imminent = False
    shard._overflow = []
    shard._live = 0
    shard._timer_gen += 1


def _shutdown_workers(procs, conns) -> None:
    for conn in conns:
        try:
            conn.send(("x",))
        except Exception:
            pass
    for proc in procs:
        proc.join(timeout=2.0)
    for proc in procs:
        if proc.is_alive():  # pragma: no cover - stuck worker safety net
            proc.terminate()
            proc.join(timeout=2.0)
    for conn in conns:
        try:
            conn.close()
        except Exception:
            pass


# -- worker side --------------------------------------------------------------
def _worker_main(psim, build_spec, index: int, conn) -> None:
    """Entry point of the forked worker for partition ``index``."""
    status = 0
    try:
        sim = psim
        if build_spec is not None:
            fn, args = build_spec
            built = fn(*args)
            sim = getattr(built, "sim", built)
            if sim.partition_count != psim.partition_count:
                raise SimulationError(
                    f"build spec constructed {sim.partition_count} partitions, "
                    f"expected {psim.partition_count}"
                )
        sim._worker_index = index
        hub = sim.telemetry
        if hub is not None:
            hub.begin_worker_capture(index)
        codec = _WireCodec(sim)
        codec.rebuild()
        _worker_loop(sim, sim._shards[index], codec, conn)
    except BaseException:
        status = 1
        try:
            conn.send(("e", None, "worker failed outside the command loop",
                       traceback.format_exc()))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass
        # skip interpreter teardown: the fork inherited the parent's open
        # file objects (telemetry JSONL, logs) and must not flush them
        os._exit(status)


def _worker_loop(sim, shard, codec, conn) -> None:
    state = {"prof": None}
    watched: set = set()
    while True:
        cmd = conn.recv()
        op = cmd[0]
        if op == "x":
            return
        if op == "t":
            _, times, facade_time = cmd
            for s, t in zip(sim._shards, times):
                if t > s._now:
                    s._now = t
            sim._time = facade_time
            continue
        if op == "ps":
            if state["prof"] is None:
                import cProfile

                state["prof"] = cProfile.Profile()
            continue
        # commands with a reply: any failure becomes an ("e", ...) reply so
        # the parent's recv-per-send protocol stays in lockstep.  The report
        # send sits inside the try because Connection.send pickles before
        # writing — a non-picklable report degrades to a clean error reply.
        try:
            if op == "w":
                conn.send(_worker_window(sim, shard, codec, cmd, watched, state))
            elif op == "c":
                fn = sim._collectors.get(cmd[1])
                if fn is None:
                    raise SimulationError(
                        f"no collector registered under {cmd[1]!r} in worker {shard.index}"
                    )
                conn.send(("cr", fn(shard.index)))
            elif op == "pe":
                prof, state["prof"] = state["prof"], None
                if prof is None:
                    conn.send(("pr", None))
                else:
                    prof.create_stats()
                    conn.send(("pr", prof.stats))
            else:
                raise SimulationError(f"unknown worker command {op!r}")
        except BaseException as exc:
            try:
                blob = pickle.dumps(exc)
            except Exception:
                blob = None
            conn.send(("e", blob, repr(exc), traceback.format_exc()))


def _worker_window(sim, shard, codec, cmd, watched: set, state: dict) -> Tuple:
    _, window_end, prev_edge, entries, bus_fan, hook_fan, watch_new = cmd
    sim._p_stopped = False
    if prev_edge is not None:
        sim._time = prev_edge
    # 1. incoming boundary mailbox entries, already merged/sorted by the
    #    parent — deliver in order, exactly like _merge_mailboxes
    for when, wire in entries:
        fn, args = codec.decode(wire)
        shard.call_at(max(when, shard._now), fn, *args)
    # 2. barrier sample bus: drop this replica's buffered barrier-context
    #    publications (the parent's merged batch below re-delivers them) and
    #    replay the previous edge's merged batch through local consumers
    for buf in sim._bus_buffers:
        del buf[:]
    if bus_fan:
        sim._drain_barrier_bus(bus_fan)
    # 3. barrier hooks fanned from other replicas' shard code, then replay
    #    every hook due at the previous edge (the parent already ran its
    #    authoritative copy; this keeps replica state in lockstep)
    for when, seq, wire in hook_fan:
        fn, args = codec.decode(wire)
        heapq.heappush(sim._barrier_hooks, (when, seq, fn, args))
    if prev_edge is not None:
        hooks = sim._barrier_hooks
        while hooks and hooks[0][0] <= prev_edge:
            _when, _seq, fn, args = heapq.heappop(hooks)
            fn(*args)
    if watch_new:
        watched.update(watch_new)
    # 4. run the shard's window
    bus_base = len(sim._bus_buffers[shard.index])
    sim._window_end = window_end
    prof = state["prof"]
    sim._enter_shard(shard)
    try:
        if prof is not None:
            prof.enable()
        try:
            shard.run(until=window_end)
        finally:
            if prof is not None:
                prof.disable()
    finally:
        sim._exit_shard()
        sim._window_end = None
    # 5. report: everything the parent needs to merge this window
    out_entries: List[Tuple] = []
    for dst, box in enumerate(sim._mailboxes):
        if box:
            for when, sent_at, src_idx, src_seq, fn, args in box:
                out_entries.append(
                    (dst, when, sent_at, src_idx, src_seq, codec.encode(fn, args))
                )
            del box[:]
    bus = sim._bus_buffers[shard.index][bus_base:]
    del sim._bus_buffers[shard.index][:]
    ships: List[Tuple] = []
    for when, ship_seq, fn, args in sim._pending_hook_ships:
        ships.append((when, ship_seq, codec.encode(fn, args)))
    del sim._pending_hook_ships[:]
    triggers: List[Tuple] = []
    if watched:
        fired = []
        for uid in watched:
            ev = sim._uid_map.get(uid)
            if ev is None or not ev._triggered:
                continue
            triggers.append((uid, ev.ok, _safe_value(ev.value)))
            fired.append(uid)
        watched.difference_update(fired)
    hub = sim.telemetry
    telem = hub.take_worker_events() if hub is not None else []
    return (
        "r",
        shard._now,
        shard.next_event_time(),
        out_entries,
        bus,
        ships,
        triggers,
        shard.stats().as_dict(),
        shard._live,
        telem,
        sim._p_stopped,
    )
