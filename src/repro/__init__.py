"""repro — a PadicoTM-style dual-abstraction grid communication framework.

Reproduction of *"Network Communications in Grid Computing: At a Crossroads
Between Parallel and Distributed Worlds"* (A. Denis, C. Pérez, T. Priol —
IPDPS 2004) as a pure-Python library over a deterministic discrete-event
network simulator.

Layer map (bottom-up, mirroring the paper's Figure 2):

=====================  =====================================================
:mod:`repro.simnet`    simulated hardware: networks, NICs, hosts, TCP model
:mod:`repro.madeleine` Madeleine-like SAN communication library
:mod:`repro.arbitration`  NetAccess: MadIO + SysIO + fairness core
:mod:`repro.abstraction`  VLink (distributed) + Circuit (parallel) + selector
:mod:`repro.methods`   parallel streams, AdOC compression, VRP, GSI security
:mod:`repro.personalities`  Vio, SysWrap, Aio, FastMessage, virtual Madeleine
:mod:`repro.middleware`  MPI, CORBA ORBs, Java sockets, SOAP, HLA, PVM, DSM
:mod:`repro.core`      PadicoTM-equivalent runtime (deployment + node boot)
:mod:`repro.bench`     measurement harness used by benchmarks/ and examples/
=====================  =====================================================

Quickstart::

    from repro.core import paper_cluster
    from repro.bench import MpiTransport, measure_latency

    fw, group = paper_cluster(2)
    transport = MpiTransport(fw, group)
    print(measure_latency(transport) * 1e6, "us one-way")
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
