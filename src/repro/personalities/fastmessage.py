"""FastMessage 2.0 personality over the Circuit abstract interface.

"Thin adapters on top of Circuit provides a FastMessage 2.0 API, and a
(virtual) Madeleine API." (§4.3)

FastMessages (FM) is a classic lightweight messaging layer: the sender
builds a message piece by piece (``FM_begin_message`` / ``FM_send_piece`` /
``FM_end_message``), the receiver registers *handlers* identified by a small
integer and extracts the payload with ``FM_receive`` from within the
handler, driven by ``FM_extract``.  This maps one-to-one onto Circuit
incremental packing plus the Circuit receive callback.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional, Tuple

from repro.abstraction.circuit import Circuit, CircuitIncoming, CircuitMessage


class FMError(RuntimeError):
    """Misuse of the FastMessage personality."""


_FM_HEADER = struct.Struct("!I")  # handler id


class FMStream:
    """A message under construction (returned by ``FM_begin_message``)."""

    def __init__(self, fm: "FastMessages", dest: int, handler_id: int):
        self.fm = fm
        self.dest = dest
        self.handler_id = handler_id
        self._message: CircuitMessage = fm.circuit.new_message(dest)
        self._message.pack_express(_FM_HEADER.pack(handler_id))
        self._pieces = 0
        self._ended = False

    def send_piece(self, data: bytes) -> "FMStream":
        """``FM_send_piece``: append one buffer to the message."""
        if self._ended:
            raise FMError("FM_send_piece after FM_end_message")
        self._message.pack_cheaper(bytes(data))
        self._pieces += 1
        return self

    def end(self):
        """``FM_end_message``: transmit the message."""
        if self._ended:
            raise FMError("FM_end_message called twice")
        self._ended = True
        return self.fm.circuit.post(self._message)

    @property
    def pieces(self) -> int:
        return self._pieces


class _FMIncoming:
    """Receive-side view handed to handlers (supports ``FM_receive``)."""

    def __init__(self, incoming: CircuitIncoming, src: int):
        self._incoming = incoming
        self.src = src

    def receive(self) -> bytes:
        """``FM_receive``: extract the next piece of the message."""
        if self._incoming.remaining_segments == 0:
            raise FMError("FM_receive past the end of the message")
        return self._incoming.unpack()

    @property
    def remaining_pieces(self) -> int:
        return self._incoming.remaining_segments


class FastMessages:
    """The FM 2.0 entry points bound to one Circuit."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.sim = circuit.sim
        self._handlers: Dict[int, Callable[[_FMIncoming], None]] = {}
        self._queue: List[Tuple[int, CircuitIncoming]] = []
        self.messages_extracted = 0
        circuit.set_receive_callback(self._on_message)

    # -- identity -------------------------------------------------------------------
    @property
    def nodeid(self) -> int:
        """``FM_nodeid`` equivalent."""
        return self.circuit.rank

    @property
    def numnodes(self) -> int:
        """``FM_numnodes`` equivalent."""
        return self.circuit.size

    # -- handlers -------------------------------------------------------------------
    def register_handler(self, handler_id: int, fn: Callable[[_FMIncoming], None]) -> None:
        """``FM_set_handler``: register the function run for ``handler_id``."""
        if handler_id < 0:
            raise FMError("handler ids must be non-negative")
        self._handlers[handler_id] = fn

    # -- sending ---------------------------------------------------------------------
    def begin_message(self, dest: int, handler_id: int) -> FMStream:
        """``FM_begin_message``: start a message towards node ``dest``."""
        if handler_id not in self._handlers and dest != self.nodeid:
            # FM semantics allow sending to handlers registered only on the
            # destination; nothing to check locally beyond basic sanity.
            pass
        return FMStream(self, dest, handler_id)

    def send(self, dest: int, handler_id: int, *pieces: bytes):
        """Convenience: begin, append every piece, end."""
        stream = self.begin_message(dest, handler_id)
        for piece in pieces:
            stream.send_piece(piece)
        return stream.end()

    # -- receiving ---------------------------------------------------------------------
    def _on_message(self, src_rank: int, incoming: CircuitIncoming, rx) -> None:
        self._queue.append((src_rank, incoming))

    def extract(self, maxmsgs: Optional[int] = None) -> int:
        """``FM_extract``: run handlers for queued messages; returns the count."""
        handled = 0
        while self._queue and (maxmsgs is None or handled < maxmsgs):
            src_rank, incoming = self._queue.pop(0)
            header = incoming.unpack_express()
            (handler_id,) = _FM_HEADER.unpack(header)
            handler = self._handlers.get(handler_id)
            if handler is None:
                raise FMError(f"no handler registered for id {handler_id}")
            handler(_FMIncoming(incoming, src_rank))
            handled += 1
            self.messages_extracted += 1
        return handled

    def pending(self) -> int:
        """Messages waiting for :meth:`extract`."""
        return len(self._queue)
