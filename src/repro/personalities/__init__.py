"""Personalities: thin, syntax-only wrappers over the abstract interfaces.

"In order to provide virtualized communication API, we propose a
personality layer able to supply various standard APIs on top of the
abstract interfaces.  Personalities are thin wrappers which adapt a generic
API to make it look like another API.  They do no protocol adaptation nor
paradigm translation; they only adapt the syntax." (§3.3)

PadicoTM's personalities, all reproduced here:

* :class:`~repro.personalities.vio.Vio` — explicit socket-like API over
  VLink ("Vio for an explicit use through a socket-like API").
* :class:`~repro.personalities.syswrap.SysWrap` — a 100 % BSD-socket
  compliant facade over VLink, used to run unmodified legacy middleware
  (the CORBA ORBs, gSOAP, the JVM socket layer, ...).
* :class:`~repro.personalities.aio.AioPersonality` — a POSIX.2 asynchronous
  I/O API over VLink.
* :class:`~repro.personalities.fastmessage.FastMessages` — the FastMessage
  2.0 API over Circuit.
* :class:`~repro.personalities.madeleine_api.VirtualMadeleine` — a virtual
  Madeleine API over Circuit (what MPICH/Madeleine links against).
"""

from repro.personalities.vio import Vio, VioSocket, VioError
from repro.personalities.syswrap import SysWrap, SysWrapSocket, SocketError
from repro.personalities.aio import AioPersonality, AioControlBlock, AioError, AIO_INPROGRESS
from repro.personalities.fastmessage import FastMessages, FMStream, FMError
from repro.personalities.madeleine_api import VirtualMadeleine, VirtualMadChannel

__all__ = [
    "Vio",
    "VioSocket",
    "VioError",
    "SysWrap",
    "SysWrapSocket",
    "SocketError",
    "AioPersonality",
    "AioControlBlock",
    "AioError",
    "AIO_INPROGRESS",
    "FastMessages",
    "FMStream",
    "FMError",
    "VirtualMadeleine",
    "VirtualMadChannel",
]

#: software cost of one personality-level call: a couple of pointer
#: indirections — "thin wrappers ... they only adapt the syntax".
PERSONALITY_OVERHEAD = 0.02e-6
