"""Vio: the explicit socket-like personality over VLink.

Vio is the personality a PadicoTM-aware application or middleware uses when
it *knows* it is running inside the framework: the API looks like sockets
(socket / bind / listen / accept / connect / send / recv / close) but the
calls explicitly return asynchronous operations, so both blocking
(``yield``-based) and callback styles are possible.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from repro.abstraction.vlink import VLink, VLinkListener, VLinkManager, VLinkOperation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnet.host import Host


class VioError(RuntimeError):
    """Socket-style errors raised by the Vio personality."""


class VioSocket:
    """A Vio socket: either a passive (listening) or active (connected) endpoint."""

    def __init__(self, vio: "Vio"):
        self.vio = vio
        self.sim = vio.sim
        self._listener: Optional[VLinkListener] = None
        self._link: Optional[VLink] = None
        self._port: Optional[int] = None

    # -- passive side ----------------------------------------------------------
    def bind(self, port: int) -> "VioSocket":
        if self._listener is not None or self._link is not None:
            raise VioError("socket already bound or connected")
        self._port = port
        return self

    def listen(self, backlog: int = 16) -> "VioSocket":
        if self._port is None:
            raise VioError("listen() before bind()")
        self._listener = self.vio.manager.listen(self._port)
        return self

    def accept(self) -> VLinkOperation:
        """Post an accept; the operation completes with a connected VioSocket."""
        if self._listener is None:
            raise VioError("accept() on a non-listening socket")
        op = VLinkOperation(self.sim, "vio-accept")

        def _accepted(inner_op: VLinkOperation) -> None:
            if inner_op.ok:
                sock = VioSocket(self.vio)
                sock._link = inner_op.value
                op.succeed(sock)
            else:
                op.fail(inner_op.value)

        self._listener.accept().set_handler(_accepted)
        return op

    # -- active side -----------------------------------------------------------------
    def connect(self, host: "Host", port: int, method: Optional[str] = None) -> VLinkOperation:
        """Post a connect; the operation completes with this socket itself."""
        if self._link is not None or self._listener is not None:
            raise VioError("socket already connected or listening")
        op = VLinkOperation(self.sim, "vio-connect")

        def _connected(inner_op: VLinkOperation) -> None:
            if inner_op.ok:
                self._link = inner_op.value
                op.succeed(self)
            else:
                op.fail(inner_op.value)

        self.vio.manager.connect(host, port, method=method).set_handler(_connected)
        return op

    # -- data transfer -----------------------------------------------------------------
    def send(self, data: bytes) -> VLinkOperation:
        return self._require_link("send").write(data)

    def recv(self, nbytes: int) -> VLinkOperation:
        """Receive up to ``nbytes`` (completes as soon as any data is there)."""
        return self._require_link("recv").read(nbytes, exact=False)

    def recv_exact(self, nbytes: int) -> VLinkOperation:
        """Receive exactly ``nbytes`` (message-framing helper)."""
        return self._require_link("recv_exact").read(nbytes, exact=True)

    def close(self) -> None:
        if self._link is not None:
            self._link.close()
        if self._listener is not None:
            self._listener.close()

    # -- introspection ------------------------------------------------------------------
    @property
    def connected(self) -> bool:
        return self._link is not None

    @property
    def link(self) -> Optional[VLink]:
        return self._link

    @property
    def driver_name(self) -> Optional[str]:
        return self._link.driver_name if self._link is not None else None

    def _require_link(self, opname: str) -> VLink:
        if self._link is None:
            raise VioError(f"{opname}() on a socket that is not connected")
        return self._link

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._listener is not None:
            return f"<VioSocket listening :{self._port}>"
        if self._link is not None:
            return f"<VioSocket connected via {self._link.driver_name}>"
        return "<VioSocket idle>"


class Vio:
    """Per-host factory of Vio sockets."""

    def __init__(self, manager: VLinkManager):
        self.manager = manager
        self.sim = manager.sim
        self.host = manager.host
        self._sockets: Dict[int, VioSocket] = {}

    def socket(self) -> VioSocket:
        sock = VioSocket(self)
        self._sockets[id(sock)] = sock
        return sock

    def open_sockets(self) -> int:
        return len(self._sockets)
