"""The virtual Madeleine personality over Circuit.

"Thanks to the Madeleine personality, the existing MPICH/Madeleine
implementation can run in PadicoTM." (§4.3)

MPICH/Madeleine is linked against the Madeleine packing API
(``mad_begin_packing`` / ``mad_pack`` / ``mad_end_packing`` and their
unpacking counterparts).  This personality re-exposes exactly that API on
top of a Circuit, so the MPI middleware of :mod:`repro.middleware.mpi`
runs unchanged whether the Circuit is mapped on MadIO (straight, inside a
cluster) or on SysIO / VLink methods (cross-paradigm, across a LAN or WAN)
— the virtualisation claim of §3.2.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.madeleine.message import MadeleineError, PackMode
from repro.abstraction.circuit import Circuit, CircuitIncoming, CircuitMessage


class VirtualMadChannel:
    """What MPICH/Madeleine sees as a Madeleine channel.

    The surface mirrors :class:`repro.madeleine.driver.MadChannel` (so code
    written against the real library cannot tell the difference) but every
    operation is carried by the Circuit abstract interface underneath.
    """

    def __init__(self, vmad: "VirtualMadeleine", circuit: Circuit):
        self.vmad = vmad
        self.circuit = circuit
        self.sim = circuit.sim
        self._recv_queue: List[Tuple[int, CircuitIncoming]] = []
        self._recv_waiters: List[Tuple[Optional[int], object]] = []
        circuit.set_receive_callback(self._on_message)

    # -- identity ---------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.circuit.name

    @property
    def rank(self) -> int:
        return self.circuit.rank

    @property
    def size(self) -> int:
        return self.circuit.size

    # -- packing (send side) -------------------------------------------------------
    def begin_packing(self, dst_rank: int) -> CircuitMessage:
        if dst_rank == self.rank:
            raise MadeleineError("virtual Madeleine channels do not loop back")
        return self.circuit.new_message(dst_rank)

    def pack(self, message: CircuitMessage, data: bytes, mode: PackMode = PackMode.CHEAPER):
        message.pack(data, mode)
        return message

    def end_packing(self, message: CircuitMessage, extra_cost=None):
        return self.circuit.post(message, extra_cost=extra_cost)

    # -- unpacking (receive side) -----------------------------------------------------
    def begin_unpacking(self, src_rank: Optional[int] = None):
        """Event completing with an incoming message handle (src, incoming)."""
        ev = self.sim.event(name=f"vmad-unpack({self.name})")
        for idx, (rank, incoming) in enumerate(self._recv_queue):
            if src_rank is None or rank == src_rank:
                self._recv_queue.pop(idx)
                ev.succeed((rank, incoming))
                return ev
        self._recv_waiters.append((src_rank, ev))
        return ev

    @staticmethod
    def unpack(incoming: CircuitIncoming, mode: Optional[PackMode] = None) -> bytes:
        return incoming.unpack(mode)

    @staticmethod
    def end_unpacking(incoming: CircuitIncoming) -> None:
        incoming.end_unpacking()

    # -- internal ------------------------------------------------------------------------
    def _on_message(self, src_rank: int, incoming: CircuitIncoming, rx) -> None:
        for idx, (want, ev) in enumerate(self._recv_waiters):
            if want is None or want == src_rank:
                self._recv_waiters.pop(idx)
                if not ev.triggered:
                    ev.succeed((src_rank, incoming))
                return
        self._recv_queue.append((src_rank, incoming))

    def pending_messages(self) -> int:
        return len(self._recv_queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VirtualMadChannel {self.name!r} rank={self.rank}/{self.size}>"


class VirtualMadeleine:
    """Per-node factory of virtual Madeleine channels."""

    def __init__(self, node):
        #: the PadicoNode this personality is loaded into.
        self.node = node
        self.sim = node.sim
        self._channels: Dict[str, VirtualMadChannel] = {}

    def open_channel(self, name: str, group, **circuit_kwargs) -> VirtualMadChannel:
        """Open (or return) the virtual channel ``name`` over ``group``.

        Unlike real Madeleine there is no hardware limit here: the Circuit
        below multiplexes through MadIO or SysIO as appropriate.
        ``circuit_kwargs`` pass through to
        :meth:`~repro.abstraction.circuit.CircuitManager.create` (e.g.
        ``adaptive=True`` for migratable route-aware legs); every member of
        the group must open the channel with the same flags.  The channel is
        cached per name — the first open's flags win.
        """
        chan = self._channels.get(name)
        if chan is None:
            circuit = self.node.circuit(f"vmad:{name}", group, **circuit_kwargs)
            chan = VirtualMadChannel(self, circuit)
            self._channels[name] = chan
        # the circuit may itself be cached (per name on the CircuitManager,
        # shared across personality instances on this node): a reopen whose
        # adaptive mode disagrees with what is actually running must fail
        # loudly, not silently hand over the other transport.
        want_adaptive = bool(circuit_kwargs.get("adaptive", False))
        have_adaptive = chan.circuit.adaptive is not None
        if want_adaptive != have_adaptive:
            raise MadeleineError(
                f"channel {name!r} is already open with adaptive={have_adaptive}; "
                f"reopening it with adaptive={want_adaptive} is not possible — "
                "pick a different channel name"
            )
        return chan

    def channels(self) -> List[str]:
        return sorted(self._channels)
