"""SysWrap: the 100 % BSD-socket-compliant personality.

"SysWrap supplies a 100 % socket-compliant API through wrapping at link
stage for direct use within C, C++ or FORTRAN legacy codes without even
recompiling.  Thus, legacy applications are able to transparently use all
PadicoTM communication methods without losing interoperability with
PadicoTM-unaware applications on plain sockets." (§4.3)

The Python equivalent of "wrapping at link stage" is handing legacy
middleware an object whose surface mimics the classic blocking socket API —
``socket() / bind / listen / accept / connect / send / recv / sendall /
close`` keyed by file-descriptor-like integers.  The middleware systems in
:mod:`repro.middleware` (the CORBA ORBs, gSOAP, the JVM socket layer, HLA)
are written against this facade exactly as their real counterparts are
written against libc sockets; swapping the VLink driver underneath (SysIO on
Ethernet, MadIO on Myrinet, parallel streams on a WAN) requires no change in
their code, which is the paper's central claim.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, TYPE_CHECKING

from repro.abstraction.vlink import VLink, VLinkListener, VLinkManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnet.host import Host


class SocketError(OSError):
    """Errno-style failures surfaced by the SysWrap facade."""


class SysWrapSocket:
    """A socket descriptor as seen by legacy middleware.

    All potentially blocking calls return simulation events; legacy-style
    code simply ``yield``s them, which mirrors a blocking libc call inside a
    user-level thread of the real PadicoTM.
    """

    def __init__(self, syswrap: "SysWrap", fd: int):
        self.syswrap = syswrap
        self.fd = fd
        self.sim = syswrap.sim
        self._listener: Optional[VLinkListener] = None
        self._link: Optional[VLink] = None
        self._bound_port: Optional[int] = None
        self._closed = False

    # -- BSD API ----------------------------------------------------------------
    def bind(self, address) -> None:
        """``bind((host, port))`` — the host part is ignored (local node)."""
        _, port = address
        self._bound_port = int(port)

    def listen(self, backlog: int = 16) -> None:
        if self._bound_port is None:
            raise SocketError("listen() before bind()")
        self._listener = self.syswrap.manager.listen(self._bound_port)

    def accept(self):
        """Returns an event completing with ``(SysWrapSocket, peer_address)``."""
        if self._listener is None:
            raise SocketError("accept() on a non-listening socket")
        done = self.sim.event(name=f"syswrap-accept(fd={self.fd})")

        def _accepted(op) -> None:
            if op.ok:
                link: VLink = op.value
                child = self.syswrap.socket()
                child._link = link
                done.succeed((child, (link.peer_name, self._bound_port)))
            else:
                done.fail(op.value)

        self._listener.accept().set_handler(_accepted)
        return done

    def connect(self, address):
        """``connect((host_name_or_Host, port))`` — returns a completion event."""
        peer, port = address
        host = self.syswrap.resolve(peer)
        done = self.sim.event(name=f"syswrap-connect(fd={self.fd})")

        def _connected(op) -> None:
            if op.ok:
                self._link = op.value
                done.succeed(self)
            else:
                done.fail(op.value)

        attempt = self.syswrap.manager.connect(host, int(port), method=self.syswrap.forced_method)
        attempt.set_handler(
            _connected
        )
        return done

    def send(self, data: bytes):
        """Returns an event completing with the number of bytes sent."""
        link = self._require_link("send")
        done = self.sim.event(name=f"syswrap-send(fd={self.fd})")
        link.write(data).set_handler(
            lambda op: done.succeed(len(data)) if op.ok else done.fail(op.value)
        )
        return done

    def sendall(self, data: bytes):
        """Identical to :meth:`send` for this facade (no partial writes)."""
        return self.send(data)

    def recv(self, nbytes: int):
        """Returns an event completing with up to ``nbytes`` bytes."""
        return self._require_link("recv").read(nbytes, exact=False)

    def recv_exact(self, nbytes: int):
        """Extension used by message-framed middleware (GIOP, SOAP-over-HTTP)."""
        return self._require_link("recv_exact").read(nbytes, exact=True)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._link is not None:
            self._link.close()
        if self._listener is not None:
            self._listener.close()
        self.syswrap._forget(self)

    # -- inspection --------------------------------------------------------------------
    def fileno(self) -> int:
        return self.fd

    def getpeername(self):
        link = self._require_link("getpeername")
        return (link.peer_name, self._bound_port or 0)

    @property
    def connected(self) -> bool:
        return self._link is not None

    @property
    def driver_name(self) -> Optional[str]:
        """Which VLink driver carries this socket (diagnostics only — legacy
        code does not look at this, which is precisely the point)."""
        return self._link.driver_name if self._link is not None else None

    def _require_link(self, opname: str) -> VLink:
        if self._link is None:
            raise SocketError(f"{opname}() on unconnected socket fd={self.fd}")
        if self._closed:
            raise SocketError(f"{opname}() on closed socket fd={self.fd}")
        return self._link

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "listening" if self._listener else ("connected" if self._link else "idle")
        return f"<SysWrapSocket fd={self.fd} {state}>"


class SysWrap:
    """Per-host socket-API facade handed to legacy middleware."""

    def __init__(self, manager: VLinkManager, forced_method: Optional[str] = None):
        self.manager = manager
        self.sim = manager.sim
        self.host = manager.host
        #: when set, every connect() uses this VLink method (used by the
        #: benchmarks to pin a middleware onto a given driver); by default the
        #: selector decides per link, invisibly to the middleware.
        self.forced_method = forced_method
        self._fds = itertools.count(3)
        self._sockets: Dict[int, SysWrapSocket] = {}

    def socket(self) -> SysWrapSocket:
        """The ``socket(AF_INET, SOCK_STREAM)`` equivalent."""
        sock = SysWrapSocket(self, next(self._fds))
        self._sockets[sock.fd] = sock
        return sock

    def resolve(self, peer) -> "Host":
        """Name resolution: accepts a Host, a PadicoNode-ish or a host name."""
        if hasattr(peer, "nics"):
            return peer
        if hasattr(peer, "host"):
            return peer.host
        topology = self.manager.selector.topology if self.manager.selector else None
        if topology is None:
            raise SocketError(f"cannot resolve {peer!r} without a topology knowledge base")
        return topology.host_by_name(str(peer))

    def open_fds(self):
        return sorted(self._sockets)

    def _forget(self, sock: SysWrapSocket) -> None:
        self._sockets.pop(sock.fd, None)
