"""Aio: a POSIX.2 asynchronous I/O personality over VLink.

"We implement an Aio personality on top of VLink which provides a plain
Posix.2 Asynchronous I/O (Aio) API." (§4.3)

The POSIX AIO model revolves around *control blocks* (``struct aiocb``):
the application fills one in, posts it with ``aio_read`` / ``aio_write``,
then either polls with ``aio_error`` (EINPROGRESS until completion),
retrieves the result with ``aio_return``, or blocks with ``aio_suspend``.
Because the VLink abstract interface is itself asynchronous (post /
poll / handler), this personality really is a pure syntax adapter.
"""

from __future__ import annotations

from typing import List, Optional

from repro.abstraction.vlink import VLink, VLinkOperation


#: aio_error() value while the operation has not completed (POSIX EINPROGRESS).
AIO_INPROGRESS = 115


class AioError(RuntimeError):
    """Misuse of the AIO personality."""


class AioControlBlock:
    """The ``struct aiocb`` equivalent."""

    def __init__(self, link: VLink, nbytes: int = 0, buffer: bytes = b""):
        #: the VLink this control block targets (the aio_fildes field).
        self.link = link
        #: requested transfer length (aio_nbytes).
        self.nbytes = nbytes
        #: data to write (for aio_write).
        self.buffer = buffer
        #: filled with the received bytes after a completed aio_read.
        self.data: Optional[bytes] = None
        self._operation: Optional[VLinkOperation] = None
        self._error: Optional[BaseException] = None

    @property
    def posted(self) -> bool:
        return self._operation is not None

    @property
    def complete(self) -> bool:
        return self._operation is not None and self._operation.poll()


class AioPersonality:
    """The four POSIX AIO entry points, per host."""

    def __init__(self, sim):
        self.sim = sim

    # -- posting -------------------------------------------------------------------
    def aio_read(self, aiocb: AioControlBlock) -> int:
        """Post an asynchronous read of ``aiocb.nbytes`` bytes.  Returns 0."""
        if aiocb.posted:
            raise AioError("control block already posted")
        if aiocb.nbytes <= 0:
            raise AioError("aio_read requires a positive aio_nbytes")
        op = aiocb.link.read(aiocb.nbytes, exact=True)

        def _done(o: VLinkOperation) -> None:
            if o.ok:
                aiocb.data = o.value
            else:
                aiocb._error = o.value

        op.set_handler(_done)
        aiocb._operation = op
        return 0

    def aio_write(self, aiocb: AioControlBlock) -> int:
        """Post an asynchronous write of ``aiocb.buffer``.  Returns 0."""
        if aiocb.posted:
            raise AioError("control block already posted")
        if not aiocb.buffer:
            raise AioError("aio_write requires a non-empty buffer")
        op = aiocb.link.write(aiocb.buffer)

        def _done(o: VLinkOperation) -> None:
            if not o.ok:
                aiocb._error = o.value

        op.set_handler(_done)
        aiocb._operation = op
        aiocb.nbytes = len(aiocb.buffer)
        return 0

    # -- completion ------------------------------------------------------------------
    def aio_error(self, aiocb: AioControlBlock) -> int:
        """0 when complete, :data:`AIO_INPROGRESS` while pending, -1 on failure."""
        if not aiocb.posted:
            raise AioError("aio_error() on a control block that was never posted")
        if not aiocb.complete:
            return AIO_INPROGRESS
        return -1 if aiocb._error is not None else 0

    def aio_return(self, aiocb: AioControlBlock) -> int:
        """Byte count of the completed operation (raises if still pending)."""
        if not aiocb.complete:
            raise AioError("aio_return() before completion")
        if aiocb._error is not None:
            raise aiocb._error
        if aiocb.data is not None:
            return len(aiocb.data)
        return aiocb.nbytes

    def aio_suspend(self, aiocbs: List[AioControlBlock]):
        """Event firing as soon as any of the control blocks completes."""
        if not aiocbs:
            raise AioError("aio_suspend() with an empty list")
        pending = [cb._operation for cb in aiocbs if cb._operation is not None]
        if not pending:
            raise AioError("aio_suspend() with no posted control block")
        return self.sim.any_of(pending)
