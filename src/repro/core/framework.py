"""The framework runtime: hosts, networks, per-node communication stacks.

A :class:`PadicoFramework` owns the simulator, the topology knowledge base
and the selector; a :class:`PadicoNode` is the per-host runtime (the
analogue of one PadicoTM process) holding the NetAccess core, the MadIO and
SysIO subsystems, the Madeleine driver, and the VLink / Circuit managers
with the standard drivers and adapter factories registered.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.simnet.engine import SimulationError, Simulator
from repro.simnet.host import CpuModel, Host, HostGroup
from repro.simnet.network import Network
from repro.simnet.networks import Ethernet100, Loopback, Myrinet2000
from repro.simnet.tcp import TcpStack
from repro.madeleine import MadeleineDriver
from repro.arbitration import MadIO, NetAccessCore, SysIO
from repro.abstraction import (
    Circuit,
    CircuitManager,
    GATEWAY_RELAY_SERVICE,
    GatewayRelay,
    LoopbackCircuitAdapter,
    LoopbackVLinkDriver,
    MadIOCircuitAdapter,
    MadIOVLinkDriver,
    Preferences,
    Route,
    RoutingEngine,
    Selector,
    SysIOCircuitAdapter,
    SysIOVLinkDriver,
    TopologyKB,
    VLinkCircuitAdapter,
    VLinkManager,
)
from repro.abstraction.common import AbstractionError
from repro.abstraction.topology import WAN_LATENCY_THRESHOLD
from repro.monitoring import FaultInjector, TopologyMonitor
from repro.telemetry import TelemetryHub


class FrameworkError(RuntimeError):
    """Deployment / bootstrap errors."""


class PadicoNode:
    """The per-host runtime: one 'PadicoTM process' on one machine."""

    def __init__(self, framework: "PadicoFramework", host: Host):
        self.framework = framework
        self.host = host
        self.sim = host.sim
        self.netaccess: Optional[NetAccessCore] = None
        self.sysio: Optional[SysIO] = None
        self.madio: Optional[MadIO] = None
        self.madeleine: Optional[MadeleineDriver] = None
        self.tcp: Optional[TcpStack] = None
        self.vlink: Optional[VLinkManager] = None
        self.circuits: Optional[CircuitManager] = None
        self.gateway_relay: Optional[GatewayRelay] = None
        self._booted = False
        self._wan_methods_enabled = False
        self._middleware: Dict[str, object] = {}

    # -- bootstrap -------------------------------------------------------------
    def boot(self) -> "PadicoNode":
        """Instantiate the full communication stack on this host."""
        if self._booted:
            return self
        host = self.host
        selector = self.framework.selector
        self.netaccess = NetAccessCore(host)

        # Distributed side: OS TCP stack + SysIO subsystem.
        has_ip = any(n.is_distributed for n in host.networks())
        self.tcp = TcpStack(host, fidelity=self.framework.fidelity)
        if has_ip:
            self.tcp.attach_all()
        self.sysio = SysIO(self.netaccess, self.tcp)

        # Parallel side: Madeleine + MadIO, attached to every SAN with the
        # full set of hosts on that SAN as the hardware-channel group.
        san_networks = [n for n in host.networks() if n.is_parallel and not isinstance(n, Loopback)]
        if san_networks:
            self.madeleine = MadeleineDriver(host)
            self.madio = MadIO(self.netaccess, self.madeleine)
            for network in san_networks:
                group = self.framework.san_group(network)
                self.madio.attach(network, group)

        # Abstraction layer: VLink manager with its drivers.  Multi-rail
        # hosts get one MadIO driver per SAN: the fastest rail keeps the
        # policy name "madio", the others register as "madio:<network>" and
        # are substituted by VLinkManager.resolve_driver when the primary
        # rail does not reach the destination.
        self.vlink = VLinkManager(host, selector)
        if self.sysio is not None:
            self.vlink.register_driver(SysIOVLinkDriver(self.sysio))
        if self.madio is not None:
            ranked = sorted(san_networks, key=lambda n: (-n.bandwidth, n.latency))
            for index, network in enumerate(ranked):
                driver = MadIOVLinkDriver(self.madio, network)
                if index > 0:
                    driver.name = f"madio:{network.name}"
                self.vlink.register_driver(driver)
        self.vlink.register_driver(LoopbackVLinkDriver(host))

        # Abstraction layer: Circuit manager with its adapter factories.
        self.circuits = CircuitManager(host, selector)
        if self.madio is not None:
            self.circuits.register_adapter_factory(
                "madio", lambda circuit, route: MadIOCircuitAdapter(circuit, route, self.madio)
            )
        self.circuits.register_adapter_factory(
            "sysio", lambda circuit, route: SysIOCircuitAdapter(circuit, route, self.sysio)
        )
        self.circuits.register_adapter_factory(
            "loopback", lambda circuit, route: LoopbackCircuitAdapter(circuit, route)
        )
        for vlink_method in ("parallel_streams", "vrp", "adoc"):
            self.circuits.register_adapter_factory(
                f"vlink:{vlink_method}",
                lambda circuit, route, m=vlink_method: VLinkCircuitAdapter(
                    circuit, route, self.vlink, method=m
                ),
            )
        # Routed circuit links (no common network) ride plain VLinks with
        # the per-hop methods pinned by the selector's circuit-hop policy.
        self.circuits.register_adapter_factory(
            "vlink", lambda circuit, route: VLinkCircuitAdapter(circuit, route, self.vlink)
        )
        # Adaptive circuits: every remote leg as a migratable session
        # (created with `circuit(..., adaptive=True)`).
        from repro.abstraction.adaptive_circuit import AdaptiveCircuitAdapter

        self.circuits.register_adapter_factory(
            "adaptive", lambda circuit, route: AdaptiveCircuitAdapter(circuit, route, self.vlink)
        )

        # Gateway relay: every booted node can store-and-forward VLink
        # traffic between its rails, making multi-homed hosts usable as
        # gateways for hosts without a common network.
        self.gateway_relay = GatewayRelay(self.vlink)

        # Adaptive re-routing: migrations towards a destination may need
        # relay nodes booted (and WAN methods enabled) on the new route.
        self.vlink.gateway_provisioner = (
            lambda dst, _fw=self.framework, _src=host: _fw.ensure_gateways(_src, dst)
        )
        self._booted = True
        return self

    @property
    def booted(self) -> bool:
        return self._booted

    def enable_wan_methods(self, streams: int = 4) -> bool:
        """Register the WAN method drivers (parallel streams, AdOC, VRP at
        zero tolerance) on this node, so relayed hops from here can use
        them.  Idempotent; called automatically for gateway nodes."""
        if self._wan_methods_enabled:
            return True
        if self.sysio is None or not self._booted:
            return False
        from repro.methods import register_wan_method_drivers

        register_wan_method_drivers(self, streams=streams)
        self._wan_methods_enabled = True
        return True

    @property
    def is_wan_gateway(self) -> bool:
        """Multi-homed with at least one WAN-class interface: relayed hops
        through this node cross a WAN and profit from the method drivers."""
        networks = self.host.networks()
        has_wan = any(
            n.is_distributed and n.latency >= WAN_LATENCY_THRESHOLD for n in networks
        )
        return has_wan and len([n for n in networks if not isinstance(n, Loopback)]) >= 2

    # -- convenience -----------------------------------------------------------------
    def circuit(self, name: str, group: HostGroup, **kwargs) -> Circuit:
        """Create (or fetch) the local endpoint of a named circuit."""
        self._require_boot()
        # Routed group links relay through gateways; boot them on demand,
        # exactly like the VLink connect path does.
        for member in group:
            if member is not self.host:
                self.framework.ensure_gateways(self.host, member)
        return self.circuits.create(name, group, **kwargs)

    def vlink_listen(self, port: int, adaptive: bool = False):
        self._require_boot()
        if adaptive:
            return self.vlink.listen_adaptive(port)
        return self.vlink.listen(port)

    def vlink_connect(
        self,
        dst: "PadicoNode | Host",
        port: int,
        method: Optional[str] = None,
        adaptive: bool = False,
    ):
        self._require_boot()
        dst_host = dst.host if isinstance(dst, PadicoNode) else dst
        if method is None:
            # Routed connects need a relay on every intermediate host; the
            # framework picks the gateways and boots them on demand.
            self.framework.ensure_gateways(self.host, dst_host)
        if adaptive:
            if method is not None:
                raise FrameworkError("adaptive connects pick their own method; drop method=")
            return self.vlink.connect_adaptive(dst_host, port)
        return self.vlink.connect(dst_host, port, method=method)

    # -- middleware registry (per node) --------------------------------------------------
    def register_middleware(self, name: str, instance: object) -> object:
        """Record a middleware system loaded into this node (MPI, an ORB, ...)."""
        self._middleware[name] = instance
        return instance

    def middleware(self, name: str) -> object:
        try:
            return self._middleware[name]
        except KeyError:
            raise FrameworkError(
                f"middleware {name!r} not loaded on node {self.host.name!r}; "
                f"loaded: {sorted(self._middleware)}"
            ) from None

    def loaded_middleware(self) -> List[str]:
        return sorted(self._middleware)

    def _require_boot(self) -> None:
        if not self._booted:
            raise FrameworkError(f"node {self.host.name!r} is not booted; call boot() first")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PadicoNode {self.host.name} booted={self._booted}>"


class PadicoFramework:
    """Owns the simulated deployment: hosts, networks, selector, nodes.

    ``partitions=N`` (N > 1) shards the simulator event loop across N
    deployment partitions (see :mod:`repro.simnet.partition`): hosts boot
    into their partition's queue, monitoring probes and fault schedules run
    in the partition owning the link/host, and cross-partition traffic rides
    boundary mailboxes under the WAN-latency lookahead.  ``executor``
    selects how the per-partition queues are driven (``"round-robin"``
    default, ``"thread"`` and ``"process"`` opt-in — the latter runs one
    worker process per partition for real multi-core scaling; call
    :meth:`shutdown` when done with it); ``lookahead`` optionally caps the
    window width below the smallest boundary-link latency.

    ``fidelity`` selects the TCP simulation fidelity for every node booted
    by this framework: ``"packet"`` (default) runs the full per-burst
    window model; ``"hybrid"`` lets stable flows collapse into the fluid
    fast path (:mod:`repro.simnet.fluid`) with byte-count-exact fallback.
    """

    def __init__(
        self,
        preferences: Optional[Preferences] = None,
        *,
        partitions: Optional[int] = None,
        executor=None,
        lookahead: Optional[float] = None,
        fidelity: str = "packet",
    ):
        if fidelity not in ("packet", "hybrid"):
            raise FrameworkError(f"unknown fidelity {fidelity!r}; use 'packet' or 'hybrid'")
        self.fidelity = fidelity
        self.sim = Simulator(partitions=partitions, executor=executor, lookahead=lookahead)
        self.topology = TopologyKB()
        self.preferences = preferences or Preferences()
        self.routing = RoutingEngine(self.topology)
        self.selector = Selector(self.topology, self.preferences, routing=self.routing)
        #: the dynamic-topology monitor; `monitoring.watch(network)` starts
        #: the probe → estimator → knowledge-base feedback loop.
        self.monitoring = TopologyMonitor(self.topology, self.sim)
        self._fault_injectors: Dict[tuple, FaultInjector] = {}
        self._hosts: Dict[str, Host] = {}
        self._nodes: Dict[str, PadicoNode] = {}
        self._networks: Dict[str, Network] = {}
        self._booted = False
        #: the flight recorder (:mod:`repro.telemetry`): ``None`` until
        #: :meth:`enable_telemetry` — every instrumented component gates its
        #: emission on its own ``telemetry`` attribute being non-None, so the
        #: disabled deployment runs the exact pre-telemetry hot path.
        self.telemetry: Optional[TelemetryHub] = None
        # On-demand gateway provisioning (boot + WAN method drivers) mutates
        # node state outside the mailbox stream.  On a partitioned kernel the
        # mutation is mirrored into every replica via the barrier bus: the
        # caller applies it immediately (it is causally waiting on the
        # relay), everyone else applies it at the next window barrier —
        # before any frame that depends on it can arrive, since cross-
        # partition arrivals never land inside the current window.
        if self.sim.partition_count > 1:
            self.sim.register_barrier_channel(
                "framework:gateway-ctl", self._apply_gateway_ctl
            )

    # -- observability -----------------------------------------------------------------
    def enable_telemetry(
        self,
        *,
        jsonl_path: Optional[str] = None,
        engine_window: float = 0.25,
    ) -> TelemetryHub:
        """Attach the flight recorder to every instrumented component.

        Creates a :class:`~repro.telemetry.TelemetryHub` (optionally
        streaming JSONL to ``jsonl_path``), wires it into the simulator,
        the monitor, every fault injector, every registered network and
        every booted node's TCP stack and VLink manager.  Components
        created afterwards (networks added, nodes booted, injectors
        fetched) are wired on creation.  Idempotent while enabled."""
        if self.telemetry is not None:
            return self.telemetry
        hub = TelemetryHub(self.sim, jsonl_path=jsonl_path, engine_window=engine_window)
        self.telemetry = hub
        self.sim.telemetry = hub
        self.monitoring.telemetry = hub
        for injector in self._fault_injectors.values():
            injector.telemetry = hub
        for network in self._networks.values():
            hub.observe_network(network)
        for node in self._nodes.values():
            self._wire_node_telemetry(node)
        return hub

    def disable_telemetry(self) -> None:
        """Detach and close the flight recorder (flushes pending buffers
        and the JSONL stream).  The recorded events stay readable on the
        returned hub of :meth:`enable_telemetry`; the deployment reverts to
        the zero-overhead disabled path."""
        hub = self.telemetry
        if hub is None:
            return
        hub.release_networks()
        self.telemetry = None
        self.sim.telemetry = None
        self.monitoring.telemetry = None
        for injector in self._fault_injectors.values():
            injector.telemetry = None
        for node in self._nodes.values():
            if node.tcp is not None:
                node.tcp.telemetry = None
            if node.vlink is not None:
                node.vlink.telemetry = None
        hub.close()

    def shutdown(self) -> None:
        """Release simulator executor resources (the process executor's
        worker pool in particular).  Idempotent; a no-op for in-process
        executors and the single-loop kernel."""
        stop = getattr(self.sim, "shutdown", None)
        if stop is not None:
            stop()

    def _wire_node_telemetry(self, node: PadicoNode) -> None:
        if node.tcp is not None:
            node.tcp.telemetry = self.telemetry
        if node.vlink is not None:
            node.vlink.telemetry = self.telemetry

    # -- deployment construction ----------------------------------------------------
    def add_network(self, network: Network) -> Network:
        if network.name in self._networks:
            raise FrameworkError(f"network name {network.name!r} already used")
        self._networks[network.name] = network
        self.topology.register_network(network)
        if self.telemetry is not None:
            self.telemetry.observe_network(network)
        return network

    def network(self, name: str) -> Network:
        try:
            return self._networks[name]
        except KeyError:
            raise FrameworkError(f"unknown network {name!r}") from None

    def networks(self) -> List[Network]:
        return list(self._networks.values())

    def add_host(
        self,
        name: str,
        *,
        cpu: Optional[CpuModel] = None,
        site: str = "default-site",
        partition: Optional[int] = None,
    ) -> Host:
        if name in self._hosts:
            raise FrameworkError(f"host name {name!r} already used")
        host = Host(self.sim, name, cpu=cpu)
        host.site = site
        if partition is not None:
            host.partition = partition
        self._hosts[name] = host
        self.topology.register_host(host)
        return host

    def host(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError:
            raise FrameworkError(f"unknown host {name!r}") from None

    def hosts(self, names: Optional[Iterable[str]] = None) -> List[Host]:
        if names is None:
            return list(self._hosts.values())
        return [self.host(n) for n in names]

    def attach(self, host_name: str, network_name: str) -> None:
        """Connect a host to a network."""
        self.network(network_name).connect(self.host(host_name))

    def add_cluster(
        self,
        names: Sequence[str],
        *,
        site: str = "default-site",
        myrinet: bool = True,
        ethernet: bool = True,
        myrinet_name: Optional[str] = None,
        ethernet_name: Optional[str] = None,
        cpu: Optional[CpuModel] = None,
    ) -> HostGroup:
        """Convenience: add a PC cluster with a SAN and/or a LAN."""
        hosts = [self.add_host(n, site=site, cpu=cpu) for n in names]
        if myrinet:
            myri = self.add_network(Myrinet2000(self.sim, myrinet_name or f"myri-{site}"))
            for h in hosts:
                myri.connect(h)
        if ethernet:
            eth = self.add_network(Ethernet100(self.sim, ethernet_name or f"eth-{site}"))
            for h in hosts:
                eth.connect(h)
        return HostGroup(f"cluster-{site}", hosts)

    def group(self, names: Sequence[str], group_name: str = "group") -> HostGroup:
        """Build a host group (the unit Circuit works on) from host names."""
        return HostGroup(group_name, [self.host(n) for n in names])

    def san_group(self, network: Network) -> HostGroup:
        """The hardware-channel group for a SAN: every host attached to it."""
        return HostGroup(f"san-{network.name}", network.hosts())

    # -- boot ------------------------------------------------------------------------------
    def boot(self, names: Optional[Iterable[str]] = None) -> List[PadicoNode]:
        """Boot the per-host runtimes (all hosts by default).

        Each node boots inside its host's event-loop partition, so anything
        the stack schedules during bring-up lands in the partition queue
        that will execute the host (a no-op on the single-loop kernel).
        A node booted *on demand from model code in another partition* (a
        relay gateway provisioned by a routed connect or an adaptive
        migration) cannot enter the owner's mid-window queue; it boots in
        the caller's context instead — bring-up only wires objects, and the
        caller is the one causally waiting on the relay.  Note that such
        runtime cross-partition provisioning mutates the gateway's node
        state from the caller's shard: deterministic under the round-robin
        executor, but deployments using ``executor="thread"`` must pre-boot
        every potential gateway."""
        targets = list(names) if names is not None else list(self._hosts)
        nodes = []
        nparts = self.sim.partition_count
        for name in targets:
            node = self._nodes.get(name)
            if node is None:
                node = PadicoNode(self, self.host(name))
                self._nodes[name] = node
            partition = node.host.partition
            if nparts > 1 and not 0 <= partition < nparts:
                # surface the misconfiguration here, not as a confusing
                # mid-run scheduling error on the first frame to this host
                raise FrameworkError(
                    f"host {name!r} is assigned to partition {partition}, but "
                    f"the kernel has partitions 0..{nparts - 1}"
                )
            try:
                ctx = self.sim.in_partition(partition)
            except SimulationError:
                # booted on demand from another partition's model code
                ctx = contextlib.nullcontext(self.sim)
            with ctx:
                node.boot()
            if self.telemetry is not None:
                self._wire_node_telemetry(node)
            nodes.append(node)
        self._booted = True
        return nodes

    # -- routing ---------------------------------------------------------------------------
    def route_between(self, a: "Host | str", b: "Host | str") -> Route:
        """The VLink route the selector would use between two hosts."""
        host_a = self.host(a) if isinstance(a, str) else a
        host_b = self.host(b) if isinstance(b, str) else b
        available = self.selector.vlink_methods_on(host_a)
        return self.selector.choose_vlink_route(host_a, host_b, available)

    def ensure_gateways(self, src: Host, dst: Host) -> List[PadicoNode]:
        """Boot the relay nodes on the src->dst route (no-op for direct links
        or unreachable pairs — the connect path reports those itself), and
        enable the WAN method drivers on every gateway of the route so the
        relayed hops can use parallel streams / zero-tolerance VRP instead
        of a plain socket per hop."""
        try:
            gateways = self.routing.gateways_between(src, dst)
        except AbstractionError:
            return []
        booted = []
        ctl: List[Tuple[str, str]] = []
        for gateway in gateways:
            if gateway.name not in self._hosts:
                continue
            if not gateway.has_service(GATEWAY_RELAY_SERVICE):
                booted.extend(self.boot([gateway.name]))
                ctl.append(("boot", gateway.name))
            node = self._nodes.get(gateway.name)
            if node is not None and node.is_wan_gateway and not node._wan_methods_enabled:
                if node.enable_wan_methods():
                    ctl.append(("wan", gateway.name))
        if ctl:
            self._broadcast_gateway_ctl(ctl)
        return booted

    def _broadcast_gateway_ctl(self, ops: List[Tuple[str, str]]) -> None:
        """Mirror an on-demand gateway provisioning into every replica.

        Only meaningful from model code on a partitioned kernel: at
        construction time the deployment is replicated wholesale (fork /
        build spec), so nothing needs shipping."""
        sim = self.sim
        if sim.partition_count <= 1 or not getattr(sim, "in_model_context", False):
            return
        for op in ops:
            sim.publish_at_barrier("framework:gateway-ctl", op)

    def _apply_gateway_ctl(self, batch) -> None:
        """Barrier-bus consumer: replay gateway provisioning in this replica.

        Re-applying in the originating replica is a no-op (boot and
        ``enable_wan_methods`` are idempotent)."""
        for _src, _idx, (op, name) in batch:
            if name not in self._hosts:
                continue
            if op == "boot":
                if not self.host(name).has_service(GATEWAY_RELAY_SERVICE):
                    self.boot([name])
            elif op == "wan":
                node = self._nodes.get(name)
                if node is None:
                    node = self.boot([name])[0]
                node.enable_wan_methods()

    def fault_injector(self, *, seed: int = 0xC0FFEE, announce: bool = True) -> FaultInjector:
        """The seeded churn/fault injector bound to this deployment.

        Cached per ``(seed, announce)``: repeated accessor calls share one
        injector, so state such as saved pre-degradation link parameters
        survives between a ``degrade_link_at`` and a later
        ``recover_link_at``.
        """
        injector = self._fault_injectors.get((seed, announce))
        if injector is None:
            injector = FaultInjector(self.sim, self.topology, seed=seed, announce=announce)
            injector.telemetry = self.telemetry
            self._fault_injectors[(seed, announce)] = injector
        return injector

    def node(self, name: str) -> PadicoNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise FrameworkError(
                f"host {name!r} has not been booted; call framework.boot() first"
            ) from None

    def nodes(self) -> List[PadicoNode]:
        return list(self._nodes.values())

    # -- running ----------------------------------------------------------------------------
    def run(self, until=None, max_time: Optional[float] = None):
        """Run the simulation (see :meth:`repro.simnet.engine.Simulator.run`)."""
        return self.sim.run(until=until, max_time=max_time)

    def process(self, gen, name: str = ""):
        """Register an application process (a generator yielding events)."""
        return self.sim.process(gen, name=name)

    def status_report(self) -> Dict[str, object]:
        """A serialisable snapshot of the deployment (used by examples)."""
        return {
            "hosts": sorted(self._hosts),
            "networks": self.topology.describe()["networks"],
            "booted_nodes": sorted(self._nodes),
            "adjacency": {f"{a}--{b}": c for (a, b), c in self.topology.adjacency().items()},
            "routing": self.routing.describe(),
            "monitoring": self.monitoring.describe(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PadicoFramework hosts={len(self._hosts)} networks={len(self._networks)}>"
