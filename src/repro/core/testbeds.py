"""Ready-made testbeds matching the paper's evaluation platforms (§5).

* :func:`paper_cluster` — "dual-Pentium III 1 GHz with 512 MB RAM, switched
  Ethernet-100, Myrinet-2000 and Linux 2.2": a cluster whose nodes carry both
  a Myrinet-2000 SAN and a Fast-Ethernet LAN.
* :func:`paper_wan_pair` — two sites joined by the VTHD high-bandwidth WAN,
  each node reaching it through its Ethernet-100 access link.
* :func:`paper_lossy_pair` — the slow trans-continental Internet link with a
  5–10 % loss rate used for the VRP experiment.
* :func:`two_cluster_grid` — the "component grid" scenario of §2.1: two
  clusters (each with its own SAN) joined by the VTHD WAN.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.simnet.host import HostGroup
from repro.simnet.networks import LossyInternet, WanVthd
from repro.abstraction import Preferences
from repro.core.framework import PadicoFramework


def paper_cluster(
    n_nodes: int = 2,
    *,
    preferences: Optional[Preferences] = None,
    myrinet: bool = True,
    ethernet: bool = True,
) -> Tuple[PadicoFramework, HostGroup]:
    """The paper's Myrinet-2000 + Ethernet-100 cluster, booted and ready."""
    fw = PadicoFramework(preferences=preferences)
    names = [f"node{i}" for i in range(n_nodes)]
    group = fw.add_cluster(names, site="rennes", myrinet=myrinet, ethernet=ethernet)
    fw.boot()
    return fw, group


def paper_wan_pair(
    *,
    preferences: Optional[Preferences] = None,
    access_ethernet: bool = True,
) -> Tuple[PadicoFramework, HostGroup]:
    """Two nodes on different sites joined by the VTHD WAN."""
    fw = PadicoFramework(preferences=preferences)
    a = fw.add_host("rennes0", site="rennes")
    b = fw.add_host("grenoble0", site="grenoble")
    wan = fw.add_network(WanVthd(fw.sim, "vthd"))
    wan.connect(a)
    wan.connect(b)
    if access_ethernet:
        # Each node also has a local Ethernet (not shared between the sites).
        from repro.simnet.networks import Ethernet100

        eth_a = fw.add_network(Ethernet100(fw.sim, "eth-rennes"))
        eth_b = fw.add_network(Ethernet100(fw.sim, "eth-grenoble"))
        eth_a.connect(a)
        eth_b.connect(b)
    fw.boot()
    return fw, HostGroup("wan-pair", [a, b])


def paper_lossy_pair(
    *,
    loss_rate: float = 0.07,
    preferences: Optional[Preferences] = None,
) -> Tuple[PadicoFramework, HostGroup]:
    """Two nodes across the slow, lossy trans-continental Internet link."""
    fw = PadicoFramework(preferences=preferences)
    a = fw.add_host("rennes0", site="rennes")
    b = fw.add_host("faraway0", site="faraway")
    link = fw.add_network(LossyInternet(fw.sim, "transcontinental", loss_rate=loss_rate))
    link.connect(a)
    link.connect(b)
    fw.boot()
    return fw, HostGroup("lossy-pair", [a, b])


def two_cluster_grid(
    nodes_per_cluster: int = 2,
    *,
    preferences: Optional[Preferences] = None,
) -> Tuple[PadicoFramework, HostGroup, HostGroup, HostGroup]:
    """Two Myrinet clusters on different sites joined by the VTHD WAN.

    Returns ``(framework, cluster_a, cluster_b, whole_grid)`` host groups —
    the deployment of the parallel-component scenario of §2.1, where an
    MPI-style code runs inside each cluster and a distributed middleware
    couples the two across the WAN.
    """
    fw = PadicoFramework(preferences=preferences)
    names_a = [f"ra{i}" for i in range(nodes_per_cluster)]
    names_b = [f"gb{i}" for i in range(nodes_per_cluster)]
    cluster_a = fw.add_cluster(names_a, site="rennes", myrinet=True, ethernet=True)
    cluster_b = fw.add_cluster(names_b, site="grenoble", myrinet=True, ethernet=True)
    wan = fw.add_network(WanVthd(fw.sim, "vthd"))
    for host in list(cluster_a) + list(cluster_b):
        wan.connect(host)
    fw.boot()
    grid = HostGroup("grid", list(cluster_a) + list(cluster_b))
    return fw, cluster_a, cluster_b, grid
