"""The PadicoTM-equivalent core runtime.

This package plays the role of the PadicoTM process infrastructure: it boots
one :class:`~repro.core.framework.PadicoNode` per host (NetAccess core,
MadIO, SysIO, Madeleine driver, the VLink and Circuit managers with their
drivers/adapters registered), maintains the topology knowledge base and the
selector, and offers a registry of dynamically loadable middleware modules
(the Python analogue of PadicoTM's dynamically loaded binary modules).

Typical use::

    from repro.core import PadicoFramework
    fw = PadicoFramework()
    cluster = fw.add_cluster(["node0", "node1"], myrinet=True, ethernet=True)
    fw.boot()
    node0 = fw.node("node0")

and from there, middleware systems are instantiated on nodes (see
:mod:`repro.middleware`) or raw VLink/Circuit endpoints are used directly.
"""

from repro.core.framework import PadicoFramework, PadicoNode, FrameworkError
from repro.core.config import (
    DeploymentConfig,
    ClusterSpec,
    WanLinkSpec,
    NodeSpec,
    load_deployment,
)
from repro.core.modules import ModuleRegistry, ModuleInfo, global_registry
from repro.core.testbeds import (
    paper_cluster,
    paper_wan_pair,
    paper_lossy_pair,
    two_cluster_grid,
)

__all__ = [
    "PadicoFramework",
    "PadicoNode",
    "FrameworkError",
    "DeploymentConfig",
    "ClusterSpec",
    "WanLinkSpec",
    "NodeSpec",
    "load_deployment",
    "ModuleRegistry",
    "ModuleInfo",
    "global_registry",
    "paper_cluster",
    "paper_wan_pair",
    "paper_lossy_pair",
    "two_cluster_grid",
]
