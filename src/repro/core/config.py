"""Declarative deployment configuration.

PadicoTM deployments are described by configuration files listing clusters,
their networks and the wide-area links between sites.  This module provides
the equivalent declarative layer: a :class:`DeploymentConfig` can be built
programmatically or parsed from a plain dictionary (e.g. loaded from JSON)
and then *realised* into a :class:`~repro.core.framework.PadicoFramework`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.simnet.networks import (
    Ethernet100,
    GigabitEthernet,
    LossyInternet,
    Myrinet2000,
    SciNetwork,
    WanVthd,
)
from repro.core.framework import FrameworkError, PadicoFramework


@dataclass
class NodeSpec:
    """One machine in the deployment."""

    name: str
    site: str = "default-site"


@dataclass
class ClusterSpec:
    """A PC cluster: a set of nodes sharing a SAN and/or a LAN."""

    name: str
    nodes: List[str]
    site: str = "default-site"
    san: Optional[str] = "myrinet"      # "myrinet", "sci" or None
    lan: Optional[str] = "ethernet100"  # "ethernet100", "gigabit" or None


@dataclass
class WanLinkSpec:
    """A wide-area link between sites (every node of both sites is attached)."""

    name: str
    sites: List[str]
    kind: str = "vthd"  # "vthd" or "lossy"
    loss_rate: Optional[float] = None


@dataclass
class DeploymentConfig:
    """A full grid deployment description."""

    clusters: List[ClusterSpec] = field(default_factory=list)
    wan_links: List[WanLinkSpec] = field(default_factory=list)
    standalone_nodes: List[NodeSpec] = field(default_factory=list)

    # -- construction helpers -------------------------------------------------
    def add_cluster(self, name: str, nodes: Sequence[str], **kwargs) -> ClusterSpec:
        spec = ClusterSpec(name=name, nodes=list(nodes), **kwargs)
        self.clusters.append(spec)
        return spec

    def add_wan_link(self, name: str, sites: Sequence[str], **kwargs) -> WanLinkSpec:
        spec = WanLinkSpec(name=name, sites=list(sites), **kwargs)
        self.wan_links.append(spec)
        return spec

    def add_node(self, name: str, site: str = "default-site") -> NodeSpec:
        spec = NodeSpec(name=name, site=site)
        self.standalone_nodes.append(spec)
        return spec

    # -- (de)serialisation -----------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "clusters": [vars(c) for c in self.clusters],
            "wan_links": [vars(w) for w in self.wan_links],
            "nodes": [vars(n) for n in self.standalone_nodes],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "DeploymentConfig":
        config = cls()
        for c in data.get("clusters", []):
            config.clusters.append(ClusterSpec(**c))
        for w in data.get("wan_links", []):
            config.wan_links.append(WanLinkSpec(**w))
        for n in data.get("nodes", []):
            config.standalone_nodes.append(NodeSpec(**n))
        return config

    # -- realisation -------------------------------------------------------------------
    def all_node_names(self) -> List[str]:
        names: List[str] = []
        for c in self.clusters:
            names.extend(c.nodes)
        names.extend(n.name for n in self.standalone_nodes)
        if len(set(names)) != len(names):
            raise FrameworkError(f"duplicate node names in deployment: {names}")
        return names

    def realise(self, framework: Optional[PadicoFramework] = None) -> PadicoFramework:
        """Build the simulated deployment described by this configuration."""
        fw = framework or PadicoFramework()
        sites_to_hosts: Dict[str, List[str]] = {}

        for cluster in self.clusters:
            for node_name in cluster.nodes:
                fw.add_host(node_name, site=cluster.site)
                sites_to_hosts.setdefault(cluster.site, []).append(node_name)
            if cluster.san:
                net = _make_san(fw, cluster)
                for node_name in cluster.nodes:
                    net.connect(fw.host(node_name))
            if cluster.lan:
                net = _make_lan(fw, cluster)
                for node_name in cluster.nodes:
                    net.connect(fw.host(node_name))

        for node in self.standalone_nodes:
            fw.add_host(node.name, site=node.site)
            sites_to_hosts.setdefault(node.site, []).append(node.name)

        for link in self.wan_links:
            net = _make_wan(fw, link)
            for site in link.sites:
                for node_name in sites_to_hosts.get(site, []):
                    net.connect(fw.host(node_name))
        return fw


def _make_san(fw: PadicoFramework, cluster: ClusterSpec):
    name = f"{cluster.san}-{cluster.name}"
    if cluster.san == "myrinet":
        return fw.add_network(Myrinet2000(fw.sim, name))
    if cluster.san == "sci":
        return fw.add_network(SciNetwork(fw.sim, name))
    raise FrameworkError(f"unknown SAN kind {cluster.san!r}")


def _make_lan(fw: PadicoFramework, cluster: ClusterSpec):
    name = f"{cluster.lan}-{cluster.name}"
    if cluster.lan == "ethernet100":
        return fw.add_network(Ethernet100(fw.sim, name))
    if cluster.lan == "gigabit":
        return fw.add_network(GigabitEthernet(fw.sim, name))
    raise FrameworkError(f"unknown LAN kind {cluster.lan!r}")


def _make_wan(fw: PadicoFramework, link: WanLinkSpec):
    if link.kind == "vthd":
        return fw.add_network(WanVthd(fw.sim, link.name))
    if link.kind == "lossy":
        kwargs = {}
        if link.loss_rate is not None:
            kwargs["loss_rate"] = link.loss_rate
        return fw.add_network(LossyInternet(fw.sim, link.name, **kwargs))
    raise FrameworkError(f"unknown WAN kind {link.kind!r}")


def load_deployment(data: Dict) -> PadicoFramework:
    """One-call helper: dictionary description → booted-ready framework."""
    return DeploymentConfig.from_dict(data).realise()
