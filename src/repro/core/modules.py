"""Dynamically loadable middleware modules.

PadicoTM loads middleware systems (MPI, the CORBA ORBs, the JVM, ...) as
dynamically loaded binary modules inside one process; "the middleware
systems are dynamically loadable into PadicoTM.  Arbitration guarantees that
any combination of them may be used at the same time." (§4.3)

The Python analogue is a registry of middleware *factories*: each factory
knows how to instantiate one middleware system on a booted
:class:`~repro.core.framework.PadicoNode`.  The registry records which
paradigm and which personality a middleware relies on, which the tests use
to check the "any combination, at the same time" property systematically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass
class ModuleInfo:
    """Metadata for one loadable middleware module."""

    name: str
    paradigm: str                      # "parallel" or "distributed"
    personality: str                   # which personality it sits on
    description: str = ""
    factory: Optional[Callable] = None
    requires: List[str] = field(default_factory=list)

    def instantiate(self, node, **kwargs):
        if self.factory is None:
            raise LookupError(f"module {self.name!r} has no factory registered")
        instance = self.factory(node, **kwargs)
        node.register_middleware(self.name, instance)
        return instance


class ModuleRegistry:
    """A registry of middleware modules available to the framework."""

    def __init__(self) -> None:
        self._modules: Dict[str, ModuleInfo] = {}

    def register(
        self,
        name: str,
        *,
        paradigm: str,
        personality: str,
        factory: Optional[Callable] = None,
        description: str = "",
        requires: Optional[List[str]] = None,
        replace: bool = False,
    ) -> ModuleInfo:
        if paradigm not in ("parallel", "distributed"):
            raise ValueError(f"paradigm must be 'parallel' or 'distributed', got {paradigm!r}")
        if name in self._modules and not replace:
            return self._modules[name]
        info = ModuleInfo(
            name=name,
            paradigm=paradigm,
            personality=personality,
            description=description,
            factory=factory,
            requires=list(requires or []),
        )
        self._modules[name] = info
        return info

    def get(self, name: str) -> ModuleInfo:
        try:
            return self._modules[name]
        except KeyError:
            raise LookupError(
                f"unknown middleware module {name!r}; known: {sorted(self._modules)}"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._modules)

    def by_paradigm(self, paradigm: str) -> List[ModuleInfo]:
        return [m for m in self._modules.values() if m.paradigm == paradigm]

    def load(self, name: str, node, **kwargs):
        """Instantiate module ``name`` on ``node`` (loading dependencies first)."""
        info = self.get(name)
        for dep in info.requires:
            if dep not in node.loaded_middleware():
                self.load(dep, node)
        return info.instantiate(node, **kwargs)

    def __len__(self) -> int:
        return len(self._modules)


#: process-wide registry populated by :mod:`repro.middleware` at import time.
_GLOBAL = ModuleRegistry()


def global_registry() -> ModuleRegistry:
    """The process-wide middleware module registry."""
    return _GLOBAL
