"""Measurement drivers: latency, bandwidth, sweeps, stream throughput."""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.simnet.cost import MB
from repro.bench.transports import Transport


def _run(sim, gen, max_time: Optional[float] = None):
    """Run a measurement generator to completion inside the simulator."""
    return sim.run(until=sim.process(gen), max_time=max_time)


def measure_latency(transport: Transport, *, size: int = 8, iterations: int = 30,
                    warmup: int = 3, max_time: Optional[float] = None) -> float:
    """One-way latency in seconds: half the average ping-pong round trip."""

    def _bench():
        if not transport._ready:
            yield from transport.setup()
        for _ in range(warmup):
            yield from transport.pingpong(size)
        total = 0.0
        for _ in range(iterations):
            total += yield from transport.pingpong(size)
        return total / iterations / 2.0

    return _run(transport.sim, _bench(), max_time)


def measure_bandwidth(transport: Transport, *, size: int = 1_000_000, repeats: int = 3,
                      max_time: Optional[float] = None) -> float:
    """Bandwidth in bytes/second for one-way transfers of ``size`` bytes."""

    def _bench():
        if not transport._ready:
            yield from transport.setup()
        # one warm-up transfer (connection establishment, slow start, ...)
        yield from transport.one_way(min(size, 65536))
        total = 0.0
        for _ in range(repeats):
            total += yield from transport.one_way(size)
        return size * repeats / total

    return _run(transport.sim, _bench(), max_time)


def bandwidth_sweep(transport: Transport, sizes: Iterable[int], *, repeats: int = 2,
                    max_time: Optional[float] = None) -> Dict[int, float]:
    """Figure-3 style sweep: observed bandwidth (bytes/s) per message size."""

    results: Dict[int, float] = {}

    def _bench():
        if not transport._ready:
            yield from transport.setup()
        yield from transport.one_way(1024)  # warm-up
        for size in sizes:
            total = 0.0
            for _ in range(repeats):
                total += yield from transport.one_way(size)
            results[size] = size * repeats / total
        return results

    _run(transport.sim, _bench(), max_time)
    return results


def measure_stream_bandwidth(sim, connect_gen, total_bytes: int, chunk: int = 256 * 1024,
                             max_time: Optional[float] = None) -> float:
    """Bulk-transfer throughput over an already-scripted sender/receiver pair.

    ``connect_gen`` is a generator producing ``(write_fn, read_done_event)``
    — used by the WAN / VRP experiments where the interesting object is the
    raw VLink connection rather than a middleware transport.
    """

    result = {}

    def _bench():
        writer, read_done = yield from connect_gen()
        t0 = sim.now
        sent = 0
        while sent < total_bytes:
            n = min(chunk, total_bytes - sent)
            yield writer(b"x" * n)
            sent += n
        yield read_done
        result["elapsed"] = sim.now - t0
        return total_bytes / result["elapsed"]

    return _run(sim, _bench(), max_time)


def bandwidth_MBps(bytes_per_second: float) -> float:
    """Decimal MB/s, the unit of the paper's figures."""
    return bytes_per_second / MB
