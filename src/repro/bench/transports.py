"""Transports under test: one tiny interface over every middleware system.

A :class:`Transport` knows how to set itself up between the first two hosts
of a group and exposes two generator operations used by the harness:

* ``pingpong(size)`` — send ``size`` bytes from node 0 to node 1 and back;
  returns the round-trip time.
* ``one_way(size)`` — send ``size`` bytes from node 0 to node 1; returns the
  time from send initiation to complete reception on node 1.

Each concrete transport goes through the *public* API of its middleware
(the MPI communicator, a CORBA proxy, a Java data stream, ...), so the
numbers include every layer the paper's own measurements include.
"""

from __future__ import annotations

from typing import Optional

from repro.simnet.host import HostGroup
from repro.core.framework import PadicoFramework, PadicoNode

#: the message sizes of Figure 3 (32 B to 1 MB, logarithmic).
FIGURE3_MESSAGE_SIZES = [
    32, 128, 512, 1024, 4096, 16384, 32768, 65536, 131072, 262144, 524288, 1000000,
]


class Transport:
    """Base class: a point-to-point byte transport between two booted nodes."""

    name = "abstract"

    def __init__(self, fw: PadicoFramework, group: HostGroup, **kwargs):
        self.fw = fw
        self.sim = fw.sim
        self.group = group
        self.node0: PadicoNode = fw.node(group[0].name)
        self.node1: PadicoNode = fw.node(group[1].name)
        self._ready = False

    # -- lifecycle -------------------------------------------------------------
    def setup(self):
        """Generator establishing whatever connections the transport needs."""
        self._ready = True
        return
        yield  # pragma: no cover - makes this a generator

    # -- operations -------------------------------------------------------------
    def pingpong(self, size: int):
        raise NotImplementedError

    def one_way(self, size: int):
        raise NotImplementedError


class CircuitTransport(Transport):
    """The raw parallel abstract interface (Table 1 column "Circuit")."""

    name = "Circuit"

    def __init__(self, fw, group, circuit_name: str = "bench-circuit", **kwargs):
        super().__init__(fw, group, **kwargs)
        self.c0 = self.node0.circuit(circuit_name, group)
        self.c1 = self.node1.circuit(circuit_name, group)

    def setup(self):
        self._ready = True
        return
        yield  # pragma: no cover

    def pingpong(self, size: int):
        payload = b"p" * size
        t0 = self.sim.now
        self.c0.send(1, payload)
        src, incoming = yield self.c1.recv()
        self.c1.send(src, incoming.unpack())
        _src, echoed = yield self.c0.recv()
        echoed.unpack()
        return self.sim.now - t0

    def one_way(self, size: int):
        payload = b"b" * size
        t0 = self.sim.now
        self.c0.send(1, payload)
        _src, incoming = yield self.c1.recv()
        incoming.unpack()
        return self.sim.now - t0


class VLinkTransport(Transport):
    """The raw distributed abstract interface (Table 1 column "VLink")."""

    name = "VLink"

    def __init__(self, fw, group, port: int = 4100, method: Optional[str] = None, **kwargs):
        super().__init__(fw, group, **kwargs)
        self.port = port
        self.method = method
        self.client = None
        self.server = None

    def setup(self):
        listener = self.node1.vlink_listen(self.port)
        accept_op = listener.accept()
        self.client = yield self.node0.vlink_connect(self.node1, self.port, method=self.method)
        self.server = yield accept_op

    def pingpong(self, size: int):
        payload = b"p" * size
        t0 = self.sim.now
        self.client.write(payload)
        data = yield self.server.read(size)
        self.server.write(data)
        yield self.client.read(size)
        return self.sim.now - t0

    def one_way(self, size: int):
        payload = b"b" * size
        t0 = self.sim.now
        self.client.write(payload)
        yield self.server.read(size)
        return self.sim.now - t0


class MpiTransport(Transport):
    """MPI (MPICH profile) over the virtual Madeleine personality."""

    name = "MPICH"

    def __init__(self, fw, group, profile=None, standalone: bool = False, **kwargs):
        super().__init__(fw, group, **kwargs)
        from repro.middleware.mpi import MPICH_1_2_5, MpiRuntime, standalone_mpi_pair

        profile = profile or MPICH_1_2_5
        self.name = profile.name + (" (standalone)" if standalone else "")
        if standalone:
            san = [n for n in group[0].networks() if n.is_parallel][0]
            runtimes = standalone_mpi_pair(san, group, profile=profile)
            self.comm0 = runtimes[0].comm_world
            self.comm1 = runtimes[1].comm_world
        else:
            r0 = MpiRuntime(self.node0, group, profile=profile, channel_name=f"bench-{id(self)}")
            r1 = MpiRuntime(self.node1, group, profile=profile, channel_name=f"bench-{id(self)}")
            self.comm0 = r0.comm_world
            self.comm1 = r1.comm_world

    def setup(self):
        self._ready = True
        return
        yield  # pragma: no cover

    def pingpong(self, size: int):
        payload = b"p" * size
        t0 = self.sim.now
        self.comm0.isend(payload, 1, tag=7)
        data = yield self.comm1.irecv(0, 7).wait()
        self.comm1.isend(data, 0, tag=8)
        yield self.comm0.irecv(1, 8).wait()
        return self.sim.now - t0

    def one_way(self, size: int):
        payload = b"b" * size
        t0 = self.sim.now
        self.comm0.isend(payload, 1, tag=9)
        yield self.comm1.irecv(0, 9).wait()
        return self.sim.now - t0


class CorbaTransport(Transport):
    """A CORBA ORB profile invoking a bench servant through GIOP."""

    name = "CORBA"

    def __init__(self, fw, group, profile=None, forced_method: Optional[str] = None,
                 port: Optional[int] = None, **kwargs):
        super().__init__(fw, group, **kwargs)
        from repro.middleware.corba import (
            Interface,
            Operation,
            ORB,
            OMNIORB_4,
            Servant,
            TC_DOUBLE,
            TC_OCTET_SEQ,
        )

        profile = profile or OMNIORB_4
        self.name = profile.name
        self.interface = Interface(
            "IDL:repro/Bench:1.0",
            [
                Operation("ping", params=(("data", TC_OCTET_SEQ),), result=TC_OCTET_SEQ),
                Operation("transfer", params=(("data", TC_OCTET_SEQ),), result=TC_DOUBLE),
            ],
        )
        sim = self.sim

        class BenchServant(Servant):
            """Echoes pings; records the arrival time of bulk transfers."""

            def __init__(self):
                self.last_arrival = 0.0

            def ping(self, data):
                return data

            def transfer(self, data):
                self.last_arrival = sim.now
                return float(sim.now)

        self.servant = BenchServant()
        self.server_orb = ORB(self.node1, profile, port=port, forced_method=forced_method)
        self.client_orb = ORB(self.node0, profile, forced_method=forced_method)
        reference = self.server_orb.activate_object(self.servant, self.interface, key="bench")
        self.proxy = self.client_orb.object_to_proxy(reference, self.interface)

    def setup(self):
        # a first small invocation warms the GIOP connection up
        yield from self.proxy.invoke("ping", b"x")

    def pingpong(self, size: int):
        payload = b"p" * size
        t0 = self.sim.now
        yield from self.proxy.invoke("ping", payload)
        return self.sim.now - t0

    def one_way(self, size: int):
        payload = b"b" * size
        t0 = self.sim.now
        yield from self.proxy.invoke("transfer", payload)
        return self.servant.last_arrival - t0


class JavaSocketTransport(Transport):
    """Java sockets + data streams (the Kaffe JVM socket layer)."""

    name = "Java socket"

    def __init__(self, fw, group, port: int = 4600, forced_method: Optional[str] = None, **kwargs):
        super().__init__(fw, group, **kwargs)
        from repro.middleware.javasockets import JavaSocketLayer

        self.layer0 = JavaSocketLayer(self.node0, forced_method=forced_method)
        self.layer1 = JavaSocketLayer(self.node1, forced_method=forced_method)
        self.port = port
        self.client = None
        self.server = None

    def setup(self):
        server_socket = self.layer1.server_socket(self.port)
        accept_gen = self.sim.process(server_socket.accept(), name="java-accept")
        client = self.layer0.socket()
        yield from client.connect(self.node1.host, self.port)
        self.client = client
        self.server = yield accept_gen

    def pingpong(self, size: int):
        payload = b"p" * size
        t0 = self.sim.now
        yield from self.client.write(payload)
        data = yield from self.server.read(size)
        yield from self.server.write(data)
        yield from self.client.read(size)
        return self.sim.now - t0

    def one_way(self, size: int):
        payload = b"b" * size
        t0 = self.sim.now
        yield from self.client.write(payload)
        yield from self.server.read(size)
        return self.sim.now - t0


class SoapTransport(Transport):
    """gSOAP-style SOAP RPC (used in the WAN experiment and examples)."""

    name = "gSOAP"

    def __init__(self, fw, group, port: int = 18100, **kwargs):
        super().__init__(fw, group, **kwargs)
        from repro.middleware.soap import SoapClient, SoapServer

        self.server = SoapServer(self.node1, port)
        self.arrivals = {}
        sim = self.sim

        def echo(data=b""):
            return data

        def transfer(data=b""):
            self.arrivals["last"] = sim.now
            return float(sim.now)

        self.server.register("echo", echo)
        self.server.register("transfer", transfer)
        self.client = SoapClient(self.node0, self.node1.host, port)

    def setup(self):
        yield from self.client.call("echo", data=b"x")

    def pingpong(self, size: int):
        payload = b"p" * size
        t0 = self.sim.now
        yield from self.client.call("echo", data=payload)
        return self.sim.now - t0

    def one_way(self, size: int):
        payload = b"b" * size
        t0 = self.sim.now
        yield from self.client.call("transfer", data=payload)
        return self.arrivals["last"] - t0
