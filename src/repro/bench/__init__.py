"""Benchmark harness: transports under test, measurement drivers, reporting.

The paper's evaluation (§5) boils down to two primitive measurements applied
to many middleware/network combinations:

* **one-way latency** — half of a small-message ping-pong round trip;
* **bandwidth** — message size divided by the time between send initiation
  on one node and complete reception on the other.

:mod:`repro.bench.transports` wraps every middleware system (and the raw
Circuit/VLink interfaces) behind one tiny ``Transport`` interface so the
same driver code (:mod:`repro.bench.harness`) produces Figure 3, Table 1 and
the WAN/VRP experiments; :mod:`repro.bench.report` formats the results the
way the paper presents them.
"""

from repro.bench.transports import (
    Transport,
    CircuitTransport,
    VLinkTransport,
    MpiTransport,
    CorbaTransport,
    JavaSocketTransport,
    SoapTransport,
    FIGURE3_MESSAGE_SIZES,
)
from repro.bench.harness import (
    measure_latency,
    measure_bandwidth,
    bandwidth_sweep,
    measure_stream_bandwidth,
)
from repro.bench.report import format_table, format_series, ResultTable

__all__ = [
    "Transport",
    "CircuitTransport",
    "VLinkTransport",
    "MpiTransport",
    "CorbaTransport",
    "JavaSocketTransport",
    "SoapTransport",
    "FIGURE3_MESSAGE_SIZES",
    "measure_latency",
    "measure_bandwidth",
    "bandwidth_sweep",
    "measure_stream_bandwidth",
    "format_table",
    "format_series",
    "ResultTable",
]
