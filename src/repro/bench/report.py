"""Result formatting in the shape the paper reports (tables and series)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.simnet.cost import MB, MICROSECOND


@dataclass
class ResultTable:
    """A small column-oriented result table (Table-1 style)."""

    title: str
    columns: List[str] = field(default_factory=list)
    rows: Dict[str, List[float]] = field(default_factory=dict)

    def add_row(self, name: str, values: Sequence[float]) -> None:
        if self.columns and len(values) != len(self.columns):
            raise ValueError(
                f"row {name!r} has {len(values)} values but the table has {len(self.columns)} columns"
            )
        self.rows[name] = list(values)

    def cell(self, row: str, column: str) -> float:
        return self.rows[row][self.columns.index(column)]

    def render(self, fmt: str = "{:>12.2f}") -> str:
        name_width = max([len(r) for r in self.rows] + [len(self.title)]) + 2
        lines = [self.title, "-" * len(self.title)]
        header = " " * name_width + "".join(f"{c:>14}" for c in self.columns)
        lines.append(header)
        for name, values in self.rows.items():
            cells = "".join(f"{v:>14.2f}" for v in values)
            lines.append(f"{name:<{name_width}}{cells}")
        return "\n".join(lines)


def format_table(title: str, columns: Sequence[str], rows: Dict[str, Sequence[float]]) -> str:
    table = ResultTable(title, list(columns))
    for name, values in rows.items():
        table.add_row(name, values)
    return table.render()


def format_series(title: str, series: Dict[str, Dict[int, float]], *, unit: str = "MB/s") -> str:
    """Figure-3 style output: one column per curve, one row per message size."""
    sizes = sorted({size for curve in series.values() for size in curve})
    names = list(series)
    lines = [title, "-" * len(title)]
    header = f"{'msg size':>10}" + "".join(f"{name:>22}" for name in names)
    lines.append(header)
    for size in sizes:
        row = f"{size:>10}"
        for name in names:
            value = series[name].get(size)
            row += f"{value / MB:>22.2f}" if value is not None else f"{'-':>22}"
        lines.append(row)
    lines.append(f"(values in {unit})")
    return "\n".join(lines)


def latency_us(seconds: float) -> float:
    """Latency in microseconds (Table 1 unit)."""
    return seconds / MICROSECOND


def bandwidth_MBps(bytes_per_second: float) -> float:
    """Bandwidth in decimal MB/s (Figure 3 / Table 1 unit)."""
    return bytes_per_second / MB
