"""Parallel TCP streams on wide-area networks.

"Over a high-bandwidth high-latency WAN with TCP/IP, each single packet loss
can dramatically lower the bandwidth.  A solution consists in utilizing
multiple sockets in parallel for a single logical link, so as to reduce the
influence of each isolated loss.  This principle of parallel streams is
already used for example in GridFTP." (§3.2)

The driver opens ``streams`` SysIO sockets towards the same port; each
``write`` is striped across them as one *record*: every stream carries a
slice framed with ``(record id, slice index, slice length)``, and the
receive side reassembles records in order before appending to the byte
stream, so the layer above still sees ordered stream semantics.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional

from repro.simnet.buffers import ByteRing
from repro.simnet.cost import MICROSECOND, split_even
from repro.simnet.engine import SimEvent
from repro.simnet.host import Host
from repro.arbitration.sysio import SysIO, SysSocket
from repro.abstraction.drivers import StreamBuffer, VLinkDriver

_HELLO = struct.Struct("!QHH")      # session id, stream index, total streams
_RECORD = struct.Struct("!QHI")     # record id, slice index, slice length

#: striping / reassembly software cost per record and per side.
STRIPING_OVERHEAD = 1.5 * MICROSECOND


class _Reassembler:
    """Collects record slices from every member stream, releases records in order."""

    def __init__(self, total_streams: int, sink: StreamBuffer):
        self.total_streams = total_streams
        self.sink = sink
        self._partial: Dict[int, List[Optional[bytes]]] = {}
        self._complete: Dict[int, bytes] = {}
        self._next_record = 0
        self._per_stream = {i: ByteRing() for i in range(total_streams)}

    def feed(self, stream_index: int, data: bytes) -> None:
        ring = self._per_stream[stream_index]
        ring.append(data)
        while True:
            if len(ring) < _RECORD.size:
                break
            record_id, slice_index, length = _RECORD.unpack(ring.peek(_RECORD.size))
            if len(ring) < _RECORD.size + length:
                break
            ring.skip(_RECORD.size)
            self._add_slice(record_id, slice_index, ring.take(length))

    def _add_slice(self, record_id: int, slice_index: int, payload: bytes) -> None:
        slices = self._partial.setdefault(record_id, [None] * self.total_streams)
        slices[slice_index] = payload
        if all(s is not None for s in slices):
            self._complete[record_id] = b"".join(slices)  # type: ignore[arg-type]
            del self._partial[record_id]
            self._release()

    def _release(self) -> None:
        while self._next_record in self._complete:
            self.sink.append(self._complete.pop(self._next_record))
            self._next_record += 1


class ParallelStreamConnection:
    """One logical link carried by several member sockets."""

    def __init__(self, driver: "ParallelStreamsVLinkDriver", session_id: int, total_streams: int,
                 peer_name: str = "?"):
        self.driver = driver
        self.sim = driver.sim
        self.session_id = session_id
        self.total_streams = total_streams
        self.peer_name = peer_name
        self.members: List[Optional[SysSocket]] = [None] * total_streams
        self.buffer = StreamBuffer(driver.sim)
        self._reassembler = _Reassembler(total_streams, self.buffer)
        self._next_record = 0
        self.closed = False
        self.bytes_sent = 0

    # -- driver-connection interface ------------------------------------------------
    def write(self, data: bytes) -> SimEvent:
        if self.closed:
            raise ConnectionError("write() on closed parallel-streams connection")
        if any(m is None for m in self.members):
            raise ConnectionError("parallel-streams connection not fully established")
        record_id = self._next_record
        self._next_record += 1
        self.bytes_sent += len(data)
        slices = split_even(len(data), self.total_streams)
        events = []
        offset = 0
        delay = STRIPING_OVERHEAD
        for index, length in enumerate(slices):
            chunk = data[offset : offset + length]
            offset += length
            frame = _RECORD.pack(record_id, index, length) + chunk
            sock = self.members[index]
            ev = self.sim.event(name=f"pstream-write({index})")
            self.sim.call_later(delay, self._deferred_write, sock, frame, ev)
            events.append(ev)
        return self.sim.all_of(events)

    def _deferred_write(self, sock: SysSocket, frame: bytes, ev: SimEvent) -> None:
        """The striping delay separates write() from the member-socket send;
        a member killed in between (churn tearing the rail down) must fail
        the operation, not unwind the simulator."""
        if self.closed:
            if not ev.triggered:
                ev.fail(ConnectionError("parallel-streams connection closed"))
            return
        try:
            sock.write(frame).chain(ev)
        except Exception as exc:
            if not ev.triggered:
                ev.fail(exc)

    def recv(self, nbytes: Optional[int] = None) -> SimEvent:
        return self.buffer.recv(nbytes)

    def recv_exact(self, nbytes: int) -> SimEvent:
        return self.buffer.recv_exact(nbytes)

    def available(self) -> int:
        return self.buffer.available()

    def read_available(self, limit: Optional[int] = None) -> bytes:
        return self.buffer.read_available(limit)

    def set_data_callback(self, fn) -> None:
        if fn is None:
            self.buffer.set_data_callback(None)
        else:
            self.buffer.set_data_callback(lambda: fn(self))

    def close(self) -> None:
        self.closed = True
        for sock in self.members:
            if sock is not None:
                sock.close()
        self.buffer.close()

    # -- internal --------------------------------------------------------------------------
    def _attach_member(self, index: int, sock: SysSocket) -> None:
        self.members[index] = sock
        sock.set_data_callback(lambda s, i=index: self._on_member_data(i, s))

    def _on_member_data(self, index: int, sock: SysSocket) -> None:
        data = sock.read_available()
        if data:
            self.sim.call_later(STRIPING_OVERHEAD, self._reassembler.feed, index, data)

    @property
    def established(self) -> bool:
        return all(m is not None for m in self.members)


class ParallelStreamsVLinkDriver(VLinkDriver):
    """The ``parallel_streams`` VLink driver (N SysIO sockets per link)."""

    name = "parallel_streams"

    #: the driver listens on its own SysIO port range so that several
    #: VLink drivers can serve the same logical VLink port side by side.
    PORT_OFFSET = 100000

    def __init__(self, sysio: SysIO, streams: int = 4):
        super().__init__(sysio.host)
        if streams < 1:
            raise ValueError("streams must be >= 1")
        self.sysio = sysio
        self.streams = streams
        self._sessions: Dict[int, ParallelStreamConnection] = {}
        self._next_session = (hash(self.host.name) & 0xFFFF) << 16

    # -- server side -----------------------------------------------------------------
    def listen(self, port: int, on_incoming: Callable) -> None:
        def _accepted(sock: SysSocket) -> None:
            # The first bytes on each member socket carry the hello record.
            def _on_first_data(s: SysSocket) -> None:
                if s.available() < _HELLO.size:
                    return
                hello = s.read_available(_HELLO.size)
                session_id, index, total = _HELLO.unpack(hello)
                conn = self._sessions.get(session_id)
                if conn is None:
                    conn = ParallelStreamConnection(self, session_id, total, peer_name=s.peer_name)
                    self._sessions[session_id] = conn
                conn._attach_member(index, s)
                # surface the connection to VLink once every member arrived
                if conn.established and not getattr(conn, "_announced", False):
                    conn._announced = True
                    on_incoming(conn, None)

            sock.set_data_callback(_on_first_data)
            _on_first_data(sock)

        self.sysio.listen(port + self.PORT_OFFSET, _accepted)

    # -- client side ------------------------------------------------------------------
    def connect(self, dst_host: Host, port: int) -> SimEvent:
        return self._connect(dst_host, port, self.streams)

    def connect_with_params(
        self, dst_host: Host, port: int, params: Optional[Dict[str, float]] = None
    ) -> SimEvent:
        """Per-connection stream fan-out: the selector derives ``streams``
        from the measured loss / bandwidth-delay product of the pinned hop
        (a lossier or fatter pipe profits from more member sockets)."""
        streams = int((params or {}).get("streams", self.streams))
        return self._connect(dst_host, port, max(1, min(16, streams)))

    def _connect(self, dst_host: Host, port: int, streams: int) -> SimEvent:
        done = self.sim.event(name=f"pstream-connect({dst_host.name}:{port})")
        session_id = self._next_session
        self._next_session += 1
        conn = ParallelStreamConnection(self, session_id, streams, peer_name=dst_host.name)
        pending = {"count": 0}

        def _member_connected(index: int, ev) -> None:
            if not ev.ok:
                if not done.triggered:
                    done.fail(ev.value)
                return
            sock: SysSocket = ev.value
            sock.write(_HELLO.pack(session_id, index, streams))
            conn._attach_member(index, sock)
            pending["count"] += 1
            if pending["count"] == streams and not done.triggered:
                done.succeed(conn)

        for index in range(streams):
            self.sysio.connect(dst_host, port + self.PORT_OFFSET).add_callback(
                lambda ev, i=index: _member_connected(i, ev)
            )
        return done

    def reaches(self, dst_host: Host) -> bool:
        return any(
            net.paradigm == "distributed" for net in self.host.shares_network_with(dst_host)
        )
