"""VRP: the Variable Reliability Protocol (tunable loss tolerance).

"On slow WAN which suffer from high loss-rate, applications may prefer to
give up reliability against a better bandwidth, but not accept totally
uncontrollable losses.  Such a tunable tradeoff is implemented in VRP, a
protocol with a tunable loss tolerance." (§3.2)  §5 measures it on a
trans-continental link with 5–10 % loss: plain TCP gets 150 KB/s, VRP with a
10 % tolerated loss gets ≈500 KB/s.

Protocol structure reproduced here:

* a small TCP control connection carries connection setup, record
  descriptors and end-of-record summaries — metadata is always reliable;
* record payloads are sent as UDP-like datagrams (``transmit_datagram`` on
  the lossy network), paced at the path rate — losses do NOT trigger
  congestion back-off, which is exactly why VRP keeps its bandwidth where
  TCP collapses;
* when the observed loss for a record exceeds the tolerance, the missing
  fraction (beyond what is tolerated) is retransmitted until the delivered
  fraction meets the target; tolerated holes are zero-filled so the layer
  above still sees a stream of the right length.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.simnet.buffers import ByteRing
from repro.simnet.cost import MICROSECOND, Cost
from repro.simnet.engine import SimEvent
from repro.simnet.host import Host
from repro.simnet.network import Delivery, Network
from repro.arbitration.sysio import SysIO, SysSocket
from repro.abstraction.drivers import StreamBuffer, VLinkDriver

_CTL_RECORD = struct.Struct("!BQII")   # kind, record id, total length, chunk size
_DATA_HEADER = struct.Struct("!QII")   # record id, offset, length
#: connection hello on the control socket: data channel id, tolerance (ppm).
#: Carrying the tolerance lets the selector tune it per connection from the
#: measured loss of the pinned hop; both directions apply the same value.
_VRP_HELLO = struct.Struct("!QI")

_CTL_NEW_RECORD = 1
_CTL_RECORD_SENT = 2
_CTL_RECORD_DONE = 3
_CTL_NACK = 4

VRP_CALL_OVERHEAD = 4.0 * MICROSECOND


@dataclass
class VrpStats:
    """Per-connection accounting of the reliability trade-off."""

    records: int = 0
    datagrams_sent: int = 0
    datagrams_lost: int = 0
    retransmissions: int = 0
    bytes_delivered: int = 0
    bytes_zero_filled: int = 0

    @property
    def observed_loss(self) -> float:
        if self.datagrams_sent == 0:
            return 0.0
        return self.datagrams_lost / self.datagrams_sent


class _RecordRx:
    """Receive-side state of one record."""

    def __init__(self, record_id: int, total: int):
        self.record_id = record_id
        self.total = total
        self.data = bytearray(total)
        self.received = 0
        self.sender_finished = False
        self._seen_offsets: set = set()

    def add(self, offset: int, chunk: bytes) -> None:
        self.data[offset : offset + len(chunk)] = chunk
        # retransmitted chunks must not be double-counted
        if offset not in self._seen_offsets:
            self._seen_offsets.add(offset)
            self.received += len(chunk)

    @property
    def delivered_fraction(self) -> float:
        return self.received / self.total if self.total else 1.0


class VrpConnection:
    """One VRP logical link (control over TCP, data over lossy datagrams)."""

    def __init__(self, driver: "VrpVLinkDriver", ctl: SysSocket, network: Network,
                 peer_host: Host, data_channel_id: int,
                 tolerance: Optional[float] = None):
        self.driver = driver
        self.sim = driver.sim
        self.ctl = ctl
        self.network = network
        self.peer_host = peer_host
        self.peer_name = peer_host.name
        self.data_channel_id = data_channel_id
        self.tolerance = driver.tolerance if tolerance is None else tolerance
        self.chunk_size = min(network.mtu, 1400)
        self.buffer = StreamBuffer(driver.sim)
        self.stats = VrpStats()
        self._ctl_rx = ByteRing()
        self._records_rx: Dict[int, _RecordRx] = {}
        # accepted records held until every earlier record was released: a
        # record delayed by retransmission must not be overtaken by a later
        # record that completed cleanly (VRP is a stream, not a datagram
        # service — same ordering family as the AdOC/GSI codec fixes).
        self._accepted_rx: Dict[int, bytes] = {}
        self._release_next = 0
        self._records_tx: Dict[int, bytes] = {}
        self._pending_writes: Dict[int, SimEvent] = {}
        self._next_record = 0
        self.closed = False
        ctl.set_data_callback(self._on_ctl_data)
        driver._register_data_sink(data_channel_id, self)

    # -- driver-connection interface --------------------------------------------------
    def write(self, data: bytes) -> SimEvent:
        if self.closed:
            raise ConnectionError("write() on closed VRP connection")
        record_id = self._next_record
        self._next_record += 1
        data = bytes(data)
        self._records_tx[record_id] = data
        self.stats.records += 1
        done = self.sim.event(name=f"vrp-write({len(data)}B)")
        self._pending_writes[record_id] = done
        # reliable descriptor first, then paced datagrams
        self.ctl.write(_CTL_RECORD.pack(_CTL_NEW_RECORD, record_id, len(data), self.chunk_size))
        self.sim.call_later(VRP_CALL_OVERHEAD, self._pump_record, record_id, 0)
        return done

    def recv(self, nbytes: Optional[int] = None) -> SimEvent:
        return self.buffer.recv(nbytes)

    def recv_exact(self, nbytes: int) -> SimEvent:
        return self.buffer.recv_exact(nbytes)

    def available(self) -> int:
        return self.buffer.available()

    def read_available(self, limit: Optional[int] = None) -> bytes:
        return self.buffer.read_available(limit)

    def set_data_callback(self, fn) -> None:
        if fn is None:
            self.buffer.set_data_callback(None)
        else:
            self.buffer.set_data_callback(lambda: fn(self))

    def close(self) -> None:
        self.closed = True
        self.ctl.close()
        self.buffer.close()

    # -- sender side --------------------------------------------------------------------
    def _pump_record(self, record_id: int, offset: int) -> None:
        """Send the next datagram of the record, paced at the path rate."""
        if self.closed:
            return
        data = self._records_tx.get(record_id)
        if data is None:
            return
        if offset >= len(data):
            self.ctl.write(
                _CTL_RECORD.pack(_CTL_RECORD_SENT, record_id, len(data), self.chunk_size)
            )
            return
        chunk = data[offset : offset + self.chunk_size]
        header = _DATA_HEADER.pack(record_id, offset, len(chunk))
        self.stats.datagrams_sent += 1
        frame = self.network.transmit_datagram(
            self.driver.host,
            self.peer_host,
            header + chunk,
            channel=("vrp-data", self.data_channel_id),
            send_cost=Cost().charge(VRP_CALL_OVERHEAD, "vrp.send"),
        )
        if frame is None:
            self.stats.datagrams_lost += 1
        # pace at the wire rate: next datagram when this one has been serialised
        pace = self.network.serialization_time(len(chunk) + _DATA_HEADER.size)
        self.sim.call_later(pace, self._pump_record, record_id, offset + len(chunk))

    def _retransmit(self, record_id: int, missing_bytes: int) -> None:
        """Resend the first ``missing_bytes`` worth of chunks of the record."""
        data = self._records_tx.get(record_id)
        if data is None or missing_bytes <= 0:
            return
        self.stats.retransmissions += 1
        # Simplified selective repeat: resend from the start of the record up
        # to the missing amount (the receiver fills whatever is still absent).
        self.sim.call_later(0.0, self._pump_record, record_id, 0)

    # -- receiver side -----------------------------------------------------------------------
    def _on_datagram(self, delivery: Delivery) -> None:
        payload = delivery.payload
        record_id, offset, length = _DATA_HEADER.unpack_from(payload, 0)
        chunk = payload[_DATA_HEADER.size : _DATA_HEADER.size + length]
        record = self._records_rx.get(record_id)
        if record is None:
            # descriptor may still be in flight on the control connection;
            # create a placeholder sized by what we know so far.
            record = _RecordRx(record_id, offset + length)
            self._records_rx[record_id] = record
        if offset + length > record.total:
            record.total = offset + length
            record.data.extend(b"\x00" * (offset + length - len(record.data)))
        record.add(offset, chunk)
        if record.sender_finished:
            self._maybe_complete(record)

    def _on_ctl_data(self, _sock: SysSocket) -> None:
        rx = self._ctl_rx
        rx.append(self.ctl.read_available())
        while len(rx) >= _CTL_RECORD.size:
            kind, record_id, total, chunk_size = _CTL_RECORD.unpack(rx.take(_CTL_RECORD.size))
            if kind == _CTL_NEW_RECORD:
                record = self._records_rx.get(record_id)
                if record is None:
                    self._records_rx[record_id] = _RecordRx(record_id, total)
                else:
                    record.total = total
                    if len(record.data) < total:
                        record.data.extend(b"\x00" * (total - len(record.data)))
            elif kind == _CTL_RECORD_SENT:
                record = self._records_rx.setdefault(record_id, _RecordRx(record_id, total))
                record.sender_finished = True
                self._maybe_complete(record)
            elif kind == _CTL_NACK:
                self._retransmit(record_id, total)
            elif kind == _CTL_RECORD_DONE:
                done = self._pending_writes.pop(record_id, None)
                self._records_tx.pop(record_id, None)
                if done is not None and not done.triggered:
                    done.succeed(total)

    def _maybe_complete(self, record: _RecordRx) -> None:
        if not record.sender_finished:
            return
        missing = record.total - record.received
        if missing <= record.total * self.tolerance:
            # accept the record: tolerated holes stay zero-filled.  The
            # acknowledgement goes out now (the sender may free its copy),
            # but the payload is only released to the stream in record
            # order.
            self.stats.bytes_delivered += record.received
            self.stats.bytes_zero_filled += missing
            self._accepted_rx[record.record_id] = bytes(record.data[: record.total])
            self._records_rx.pop(record.record_id, None)
            self.ctl.write(
                _CTL_RECORD.pack(_CTL_RECORD_DONE, record.record_id, record.total, 0)
            )
            while self._release_next in self._accepted_rx:
                self.buffer.append(self._accepted_rx.pop(self._release_next))
                self._release_next += 1
        else:
            # too many losses: ask the sender to resend (reliable part of VRP)
            record.sender_finished = False
            self.ctl.write(_CTL_RECORD.pack(_CTL_NACK, record.record_id, missing, 0))


class VrpVLinkDriver(VLinkDriver):
    """The ``vrp`` VLink driver."""

    name = "vrp"

    #: the driver listens on its own SysIO port range so that several
    #: VLink drivers can serve the same logical VLink port side by side.
    PORT_OFFSET = 120000

    def __init__(self, sysio: SysIO, tolerance: float = 0.10):
        super().__init__(sysio.host)
        if not (0.0 <= tolerance < 1.0):
            raise ValueError("tolerance must be in [0, 1)")
        self.sysio = sysio
        self.tolerance = tolerance
        self._sinks: Dict[int, VrpConnection] = {}
        self._next_channel = (hash(self.host.name) & 0xFFF) << 16
        self._datagram_handler_installed: Dict[str, bool] = {}

    @property
    def reliable(self) -> bool:
        """Only a zero-tolerance VRP keeps every byte; adaptive rails and
        gateway relays must not ride a driver that surrenders data."""
        return self.tolerance == 0.0

    # -- datagram demultiplexing -------------------------------------------------------
    def _register_data_sink(self, channel_id: int, conn: VrpConnection) -> None:
        self._sinks[channel_id] = conn
        self._install_datagram_tap(conn.network)

    def _install_datagram_tap(self, network: Network) -> None:
        """VRP data rides the same NIC the TCP stack owns; tap its handler."""
        if self._datagram_handler_installed.get(network.name):
            return
        nic = network.nic_of(self.host)
        tcp_handler = nic._receive_handler

        def _handler(delivery: Delivery) -> None:
            channel = delivery.frame.channel
            if isinstance(channel, tuple) and channel and channel[0] == "vrp-data":
                sink = self._sinks.get(channel[1])
                if sink is not None:
                    sink._on_datagram(delivery)
                return
            if tcp_handler is not None:
                tcp_handler(delivery)

        nic.set_receive_handler(_handler, owner=nic.owner or "os-tcp")
        self._datagram_handler_installed[network.name] = True

    # -- connection setup -----------------------------------------------------------------
    def listen(self, port: int, on_incoming: Callable) -> None:
        def _accepted(ctl_sock: SysSocket) -> None:
            def _on_hello(s: SysSocket) -> None:
                if s.available() < _VRP_HELLO.size:
                    return
                channel_id, tolerance_ppm = _VRP_HELLO.unpack(
                    s.read_available(_VRP_HELLO.size)
                )
                s.set_data_callback(None)
                conn = VrpConnection(
                    self, s, s.network, s.conn.peer_host, channel_id,
                    tolerance=tolerance_ppm / 1e6,
                )
                on_incoming(conn, s.conn.peer_host)

            ctl_sock.set_data_callback(_on_hello)
            _on_hello(ctl_sock)

        self.sysio.listen(port + self.PORT_OFFSET, _accepted)

    def connect(self, dst_host: Host, port: int) -> SimEvent:
        return self._connect(dst_host, port, self.tolerance)

    def connect_with_params(
        self, dst_host: Host, port: int, params: Optional[Dict[str, float]] = None
    ) -> SimEvent:
        """Per-connection loss tolerance: the selector derives it from the
        measured loss rate of the pinned hop (relay and adaptive legs always
        pin zero — they carry somebody else's framed stream)."""
        tolerance = float((params or {}).get("tolerance", self.tolerance))
        return self._connect(dst_host, port, max(0.0, min(0.5, tolerance)))

    def _connect(self, dst_host: Host, port: int, tolerance: float) -> SimEvent:
        done = self.sim.event(name=f"vrp-connect({dst_host.name}:{port})")
        channel_id = self._next_channel
        self._next_channel += 1

        def _connected(ev) -> None:
            if not ev.ok:
                done.fail(ev.value)
                return
            ctl_sock: SysSocket = ev.value
            ctl_sock.write(_VRP_HELLO.pack(channel_id, int(round(tolerance * 1e6))))
            conn = VrpConnection(
                self, ctl_sock, ctl_sock.network, dst_host, channel_id,
                tolerance=tolerance,
            )
            done.succeed(conn)

        self.sysio.connect(dst_host, port + self.PORT_OFFSET).add_callback(_connected)
        return done

    def reaches(self, dst_host: Host) -> bool:
        return any(
            net.paradigm == "distributed" for net in self.host.shares_network_with(dst_host)
        )
