"""Alternate communication methods (§3.2).

"Even if a straight adapter is available, it is not always the better
method, especially on distributed-oriented networks."  The paper lists four
families of alternate methods, all reproduced here as additional VLink
drivers (plus a wrapping security layer), so that the selector can prefer
them per link class and middleware systems use them *without changing a
line*:

* :mod:`repro.methods.parallel_streams` — multiple sockets per logical link
  on high-bandwidth, high-latency WANs (the GridFTP trick).
* :mod:`repro.methods.adoc` — AdOC-style adaptive online compression for
  slow links (real zlib compression, adaptive per block).
* :mod:`repro.methods.vrp` — VRP, a protocol with a *tunable* loss tolerance
  for lossy WANs: give up a bounded amount of reliability for bandwidth.
* :mod:`repro.methods.security` — GSI-style authentication + ciphering for
  links that cross administrative sites.
"""

from repro.methods.parallel_streams import ParallelStreamsVLinkDriver, ParallelStreamConnection
from repro.methods.adoc import AdocVLinkDriver, AdocConnection, AdocCodec
from repro.methods.vrp import VrpVLinkDriver, VrpConnection, VrpStats
from repro.methods.security import SecureVLinkDriver, SecureConnection, SiteCredential

__all__ = [
    "ParallelStreamsVLinkDriver",
    "ParallelStreamConnection",
    "AdocVLinkDriver",
    "AdocConnection",
    "AdocCodec",
    "VrpVLinkDriver",
    "VrpConnection",
    "VrpStats",
    "SecureVLinkDriver",
    "SecureConnection",
    "SiteCredential",
]


def register_method_drivers(node, *, streams: int = 4, vrp_tolerance: float = 0.10) -> None:
    """Register every method driver on a booted node's VLink manager."""
    manager = node.vlink
    sysio = node.sysio
    manager.register_driver(ParallelStreamsVLinkDriver(sysio, streams=streams))
    manager.register_driver(AdocVLinkDriver(sysio))
    manager.register_driver(VrpVLinkDriver(sysio, tolerance=vrp_tolerance))
    manager.register_driver(SecureVLinkDriver(sysio))
