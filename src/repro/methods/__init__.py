"""Alternate communication methods (§3.2).

"Even if a straight adapter is available, it is not always the better
method, especially on distributed-oriented networks."  The paper lists four
families of alternate methods, all reproduced here as additional VLink
drivers (plus a wrapping security layer), so that the selector can prefer
them per link class and middleware systems use them *without changing a
line*:

* :mod:`repro.methods.parallel_streams` — multiple sockets per logical link
  on high-bandwidth, high-latency WANs (the GridFTP trick).
* :mod:`repro.methods.adoc` — AdOC-style adaptive online compression for
  slow links (real zlib compression, adaptive per block).
* :mod:`repro.methods.vrp` — VRP, a protocol with a *tunable* loss tolerance
  for lossy WANs: give up a bounded amount of reliability for bandwidth.
* :mod:`repro.methods.security` — GSI-style authentication + ciphering for
  links that cross administrative sites.
"""

from repro.methods.parallel_streams import ParallelStreamsVLinkDriver, ParallelStreamConnection
from repro.methods.adoc import AdocVLinkDriver, AdocConnection, AdocCodec
from repro.methods.vrp import VrpVLinkDriver, VrpConnection, VrpStats
from repro.methods.security import SecureVLinkDriver, SecureConnection, SiteCredential

__all__ = [
    "register_method_drivers",
    "register_wan_method_drivers",
    "ParallelStreamsVLinkDriver",
    "ParallelStreamConnection",
    "AdocVLinkDriver",
    "AdocConnection",
    "AdocCodec",
    "VrpVLinkDriver",
    "VrpConnection",
    "VrpStats",
    "SecureVLinkDriver",
    "SecureConnection",
    "SiteCredential",
]


def register_method_drivers(node, *, streams: int = 4, vrp_tolerance: float = 0.10) -> None:
    """Register every method driver on a booted node's VLink manager."""
    manager = node.vlink
    sysio = node.sysio
    manager.register_driver(ParallelStreamsVLinkDriver(sysio, streams=streams))
    manager.register_driver(AdocVLinkDriver(sysio))
    manager.register_driver(VrpVLinkDriver(sysio, tolerance=vrp_tolerance))
    manager.register_driver(SecureVLinkDriver(sysio))


def register_wan_method_drivers(node, *, streams: int = 4) -> None:
    """Register the WAN method drivers a *gateway* needs for relayed hops.

    Parallel streams and AdOC are lossless by construction; VRP is pinned at
    zero tolerance because a relay (or an adaptive rail) must never give up
    bytes that belong to somebody else's stream.  An already-registered
    driver wins the name (``register_driver`` keeps the existing instance) —
    that is safe because relay legs and adaptive rails restrict selection to
    *reliable* drivers, so a user-registered lossy VRP is simply not used
    for them.
    """
    manager = node.vlink
    sysio = node.sysio
    manager.register_driver(ParallelStreamsVLinkDriver(sysio, streams=streams))
    manager.register_driver(AdocVLinkDriver(sysio))
    manager.register_driver(VrpVLinkDriver(sysio, tolerance=0.0))
