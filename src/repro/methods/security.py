"""GSI-style security method: authentication + ciphering between sites.

§2.1: "they should adapt their security requirements to the characteristics
of the underlying network, eg. if the network is secure, it is useless to
cipher data"; §3.2 lists encryption/authentication through a protocol
plug-in (GSI or IPsec) among the alternate methods, and §7 leaves a full
treatment to future work.  Accordingly this driver implements the plug-in
mechanics — a credential handshake at connect time, per-record ciphering and
integrity tags, a CPU cost model — rather than production cryptography
(the cipher is an HMAC-derived keystream, the point being the framework
integration and the cost, not cryptanalysis resistance).
"""

from __future__ import annotations

import hashlib
import hmac
import struct
from dataclasses import dataclass
from typing import Callable, Optional

from repro.simnet.buffers import ByteRing
from repro.simnet.cost import MB, MICROSECOND
from repro.simnet.engine import SimEvent
from repro.simnet.host import Host
from repro.arbitration.sysio import SysIO, SysSocket
from repro.abstraction.drivers import StreamBuffer, VLinkDriver

_RECORD = struct.Struct("!I32s")  # ciphertext length, auth tag


class SecurityError(ConnectionError):
    """Authentication or integrity failures."""


@dataclass(frozen=True)
class SiteCredential:
    """A (very) simplified GSI credential: site name + shared secret."""

    site: str
    secret: bytes = b"repro-grid-ca"

    def token(self) -> bytes:
        return hmac.new(self.secret, self.site.encode("utf-8"), hashlib.sha256).digest()

    def verify(self, site: str, token: bytes) -> bool:
        expected = hmac.new(self.secret, site.encode("utf-8"), hashlib.sha256).digest()
        return hmac.compare_digest(expected, token)


def _keystream(key: bytes, length: int) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < length:
        out += hashlib.sha256(key + counter.to_bytes(8, "big")).digest()
        counter += 1
    return bytes(out[:length])


def _cipher(key: bytes, data: bytes) -> bytes:
    stream = _keystream(key, len(data))
    return bytes(a ^ b for a, b in zip(data, stream))


class SecureConnection:
    """An authenticated, ciphered byte-stream over one SysIO socket."""

    #: symmetric-cipher throughput on the paper's CPU class (3DES-era).
    CIPHER_BANDWIDTH = 15.0 * MB
    HANDSHAKE_OVERHEAD = 150.0 * MICROSECOND

    def __init__(self, driver: "SecureVLinkDriver", sock: SysSocket, session_key: bytes):
        self.driver = driver
        self.sim = driver.sim
        self.sock = sock
        self.peer_name = sock.peer_name
        self.session_key = session_key
        self.buffer = StreamBuffer(driver.sim)
        self._rx = ByteRing()
        self.closed = False
        self.records_rejected = 0
        # per-direction cursors serializing the size-dependent cipher delays:
        # a small record's cheaper crypto must never let it overtake an
        # earlier large one — this is a byte stream.
        self._next_write_at = 0.0
        self._next_append_at = 0.0
        sock.set_data_callback(self._on_data)

    # -- driver-connection interface ------------------------------------------------
    def write(self, data: bytes) -> SimEvent:
        if self.closed:
            raise ConnectionError("write() on closed secure connection")
        ciphertext = _cipher(self.session_key, bytes(data))
        tag = hmac.new(self.session_key, ciphertext, hashlib.sha256).digest()
        frame = _RECORD.pack(len(ciphertext), tag) + ciphertext
        cpu = len(data) / self.CIPHER_BANDWIDTH
        done = self.sim.event(name=f"gsi-write({len(data)}B)")
        ready = max(self.sim.now + cpu, self._next_write_at)
        self._next_write_at = ready
        self.sim.call_later(ready - self.sim.now, lambda: self.sock.write(frame).chain(done))
        return done

    def recv(self, nbytes: Optional[int] = None) -> SimEvent:
        return self.buffer.recv(nbytes)

    def recv_exact(self, nbytes: int) -> SimEvent:
        return self.buffer.recv_exact(nbytes)

    def available(self) -> int:
        return self.buffer.available()

    def read_available(self, limit: Optional[int] = None) -> bytes:
        return self.buffer.read_available(limit)

    def set_data_callback(self, fn) -> None:
        if fn is None:
            self.buffer.set_data_callback(None)
        else:
            self.buffer.set_data_callback(lambda: fn(self))

    def close(self) -> None:
        self.closed = True
        self.sock.close()
        self.buffer.close()

    # -- receive path ------------------------------------------------------------------
    def _on_data(self, sock: SysSocket) -> None:
        rx = self._rx
        rx.append(sock.read_available())
        while True:
            if len(rx) < _RECORD.size:
                return
            length, tag = _RECORD.unpack(rx.peek(_RECORD.size))
            if len(rx) < _RECORD.size + length:
                return
            rx.skip(_RECORD.size)
            ciphertext = rx.take(length)
            expected = hmac.new(self.session_key, ciphertext, hashlib.sha256).digest()
            if not hmac.compare_digest(expected, tag):
                self.records_rejected += 1
                continue
            plaintext = _cipher(self.session_key, ciphertext)
            cpu = len(plaintext) / self.CIPHER_BANDWIDTH
            ready = max(self.sim.now + cpu, self._next_append_at)
            self._next_append_at = ready
            self.sim.call_later(ready - self.sim.now, self.buffer.append, plaintext)


class SecureVLinkDriver(VLinkDriver):
    """The ``gsi`` VLink driver: credential handshake + ciphered records."""

    name = "gsi"

    #: the driver listens on its own SysIO port range so that several
    #: VLink drivers can serve the same logical VLink port side by side.
    PORT_OFFSET = 130000

    def __init__(self, sysio: SysIO, credential: Optional[SiteCredential] = None):
        super().__init__(sysio.host)
        self.sysio = sysio
        self.credential = credential or SiteCredential(self.host.site)

    def _session_key(self, peer_site: str) -> bytes:
        sites = sorted([self.credential.site, peer_site])
        return hashlib.sha256(self.credential.secret + "|".join(sites).encode()).digest()

    def listen(self, port: int, on_incoming: Callable) -> None:
        def _accepted(sock: SysSocket) -> None:
            state = {"hello": bytearray()}

            def _on_hello(s: SysSocket) -> None:
                state["hello"] += s.read_available()
                buf = state["hello"]
                if len(buf) < 2:
                    return
                site_len = struct.unpack("!H", buf[:2])[0]
                if len(buf) < 2 + site_len + 32:
                    return
                site = bytes(buf[2 : 2 + site_len]).decode("utf-8")
                token = bytes(buf[2 + site_len : 2 + site_len + 32])
                del buf[: 2 + site_len + 32]
                if not self.credential.verify(site, token):
                    s.close()
                    return
                s.set_data_callback(None)
                # reply with our own credential so the client authenticates us too
                own = self.credential.site.encode("utf-8")
                s.write(struct.pack("!H", len(own)) + own + self.credential.token())
                conn = SecureConnection(self, s, self._session_key(site))
                self.sim.call_later(
                    SecureConnection.HANDSHAKE_OVERHEAD, on_incoming, conn, s.conn.peer_host
                )

            sock.set_data_callback(_on_hello)
            _on_hello(sock)

        self.sysio.listen(port + self.PORT_OFFSET, _accepted)

    def connect(self, dst_host: Host, port: int) -> SimEvent:
        done = self.sim.event(name=f"gsi-connect({dst_host.name}:{port})")

        def _connected(ev) -> None:
            if not ev.ok:
                done.fail(ev.value)
                return
            sock: SysSocket = ev.value
            own = self.credential.site.encode("utf-8")
            sock.write(struct.pack("!H", len(own)) + own + self.credential.token())
            state = {"hello": bytearray()}

            def _on_reply(s: SysSocket) -> None:
                state["hello"] += s.read_available()
                buf = state["hello"]
                if len(buf) < 2:
                    return
                site_len = struct.unpack("!H", buf[:2])[0]
                if len(buf) < 2 + site_len + 32:
                    return
                site = bytes(buf[2 : 2 + site_len]).decode("utf-8")
                token = bytes(buf[2 + site_len : 2 + site_len + 32])
                del buf[: 2 + site_len + 32]
                if not self.credential.verify(site, token):
                    if not done.triggered:
                        done.fail(SecurityError(f"peer site {site!r} failed authentication"))
                    return
                s.set_data_callback(None)
                conn = SecureConnection(self, s, self._session_key(site))
                if not done.triggered:
                    done.succeed(conn, delay=SecureConnection.HANDSHAKE_OVERHEAD)

            sock.set_data_callback(_on_reply)

        self.sysio.connect(dst_host, port + self.PORT_OFFSET).add_callback(_connected)
        return done

    def reaches(self, dst_host: Host) -> bool:
        return any(
            net.paradigm == "distributed" for net in self.host.shares_network_with(dst_host)
        )
