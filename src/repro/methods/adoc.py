"""AdOC-style adaptive online compression.

"On slow networks, it may be worth compressing data to speed-up the
transfers.  AdOC implements an adaptive online compression mechanism."
(§3.2, citing Jeannot, Knutsson & Bjorkmann)

The driver wraps a single SysIO socket.  Every ``write`` becomes a framed
*block*; before sending, the codec decides — per block, adaptively — whether
to compress it: it compresses a sample of the block and only keeps the
compressed form when the achieved ratio beats a threshold (so incompressible
data, e.g. already-compressed scientific payloads, is passed through without
wasting CPU).  Compression is real ``zlib``; the CPU time it would take on
the paper's Pentium III is charged to the virtual clock.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Callable, Optional

from repro.simnet.buffers import ByteRing
from repro.simnet.cost import MB
from repro.simnet.engine import SimEvent
from repro.simnet.host import Host
from repro.arbitration.sysio import SysIO, SysSocket
from repro.abstraction.drivers import StreamBuffer, VLinkDriver

_BLOCK = struct.Struct("!BII")  # flags, original length, wire length
_FLAG_COMPRESSED = 0x01


@dataclass
class AdocCodec:
    """The adaptive compression policy and its CPU cost model."""

    level: int = 6
    #: only keep the compressed form when it is at least this much smaller.
    min_gain: float = 0.10
    #: bytes of the block sampled to estimate compressibility.
    sample_size: int = 4096
    #: zlib throughput on a PIII-1GHz class machine (compress / decompress).
    compress_bandwidth: float = 18.0 * MB
    decompress_bandwidth: float = 60.0 * MB

    def should_compress(self, block: bytes) -> bool:
        if len(block) < 256:
            return False
        sample = block[: self.sample_size]
        compressed = zlib.compress(sample, self.level)
        return len(compressed) <= len(sample) * (1.0 - self.min_gain)

    def encode(self, block: bytes) -> tuple:
        """Return ``(flags, wire_bytes, cpu_seconds)`` for one block."""
        if self.should_compress(block):
            wire = zlib.compress(block, self.level)
            if len(wire) < len(block):
                return _FLAG_COMPRESSED, wire, len(block) / self.compress_bandwidth
        return 0, block, len(block) / (self.compress_bandwidth * 20)

    def decode(self, flags: int, wire: bytes, original_length: int) -> tuple:
        """Return ``(block, cpu_seconds)`` for one received block."""
        if flags & _FLAG_COMPRESSED:
            block = zlib.decompress(wire)
            if len(block) != original_length:
                raise ValueError("AdOC block length mismatch after decompression")
            return block, original_length / self.decompress_bandwidth
        return wire, len(wire) / (self.decompress_bandwidth * 20)


class AdocConnection:
    """A compressed byte-stream over one SysIO socket."""

    def __init__(self, driver: "AdocVLinkDriver", sock: SysSocket):
        self.driver = driver
        self.sim = driver.sim
        self.codec = driver.codec
        self.sock = sock
        self.peer_name = sock.peer_name
        self.buffer = StreamBuffer(driver.sim)
        self._rx = ByteRing()
        self.closed = False
        self.blocks_sent = 0
        self.blocks_compressed = 0
        self.bytes_in = 0
        self.bytes_on_wire = 0
        # per-direction cursors serializing the size-dependent codec delays:
        # a small block's cheaper (de)compression must never let it overtake
        # an earlier large one — this is a byte stream.
        self._next_write_at = 0.0
        self._next_append_at = 0.0
        sock.set_data_callback(self._on_data)

    # -- driver-connection interface --------------------------------------------------
    def write(self, data: bytes) -> SimEvent:
        if self.closed:
            raise ConnectionError("write() on closed AdOC connection")
        flags, wire, cpu = self.codec.encode(bytes(data))
        self.blocks_sent += 1
        if flags & _FLAG_COMPRESSED:
            self.blocks_compressed += 1
        self.bytes_in += len(data)
        self.bytes_on_wire += len(wire)
        frame = _BLOCK.pack(flags, len(data), len(wire)) + wire
        done = self.sim.event(name=f"adoc-write({len(data)}B)")
        ready = max(self.sim.now + cpu, self._next_write_at)
        self._next_write_at = ready
        self.sim.call_later(ready - self.sim.now, lambda: self.sock.write(frame).chain(done))
        return done

    def recv(self, nbytes: Optional[int] = None) -> SimEvent:
        return self.buffer.recv(nbytes)

    def recv_exact(self, nbytes: int) -> SimEvent:
        return self.buffer.recv_exact(nbytes)

    def available(self) -> int:
        return self.buffer.available()

    def read_available(self, limit: Optional[int] = None) -> bytes:
        return self.buffer.read_available(limit)

    def set_data_callback(self, fn) -> None:
        if fn is None:
            self.buffer.set_data_callback(None)
        else:
            self.buffer.set_data_callback(lambda: fn(self))

    def close(self) -> None:
        self.closed = True
        self.sock.close()
        self.buffer.close()

    @property
    def compression_ratio(self) -> float:
        """Wire bytes / input bytes for everything written so far."""
        if self.bytes_in == 0:
            return 1.0
        return self.bytes_on_wire / self.bytes_in

    # -- receive path ---------------------------------------------------------------------
    def _on_data(self, sock: SysSocket) -> None:
        rx = self._rx
        rx.append(sock.read_available())
        while True:
            if len(rx) < _BLOCK.size:
                return
            flags, original, wire_len = _BLOCK.unpack(rx.peek(_BLOCK.size))
            if len(rx) < _BLOCK.size + wire_len:
                return
            rx.skip(_BLOCK.size)
            wire = rx.take(wire_len)
            block, cpu = self.codec.decode(flags, wire, original)
            ready = max(self.sim.now + cpu, self._next_append_at)
            self._next_append_at = ready
            self.sim.call_later(ready - self.sim.now, self.buffer.append, block)


class AdocVLinkDriver(VLinkDriver):
    """The ``adoc`` VLink driver: SysIO + adaptive online compression."""

    name = "adoc"

    #: the driver listens on its own SysIO port range so that several
    #: VLink drivers can serve the same logical VLink port side by side.
    PORT_OFFSET = 110000

    def __init__(self, sysio: SysIO, codec: Optional[AdocCodec] = None):
        super().__init__(sysio.host)
        self.sysio = sysio
        self.codec = codec or AdocCodec()

    def listen(self, port: int, on_incoming: Callable) -> None:
        self.sysio.listen(
            port + self.PORT_OFFSET,
            lambda sock: on_incoming(AdocConnection(self, sock), sock.conn.peer_host),
        )

    def connect(self, dst_host: Host, port: int) -> SimEvent:
        done = self.sim.event(name=f"adoc-connect({dst_host.name}:{port})")

        def _connected(ev) -> None:
            if ev.ok:
                done.succeed(AdocConnection(self, ev.value))
            else:
                done.fail(ev.value)

        self.sysio.connect(dst_host, port + self.PORT_OFFSET).add_callback(_connected)
        return done

    def reaches(self, dst_host: Host) -> bool:
        return any(
            net.paradigm == "distributed" for net in self.host.shares_network_with(dst_host)
        )
