#!/usr/bin/env python
"""Record a flight-recorder trace of the engine-scale deployment scenario.

Builds the same grid deployment ``benchmarks/test_engine_scale.py``
measures (chunked VLink streams, WAN monitoring, seeded churn), attaches
the telemetry hub with a JSONL stream, runs it to completion, and verifies
on the spot that replaying the written trace reproduces the live KPI
document byte-for-byte.  The nightly CI job archives the trace together
with ``tools/kpi_report.py --json`` output, so any run can be re-analysed
offline without re-simulating.

Usage::

    python tools/record_trace.py --size small --out trace.jsonl
    python tools/record_trace.py --size medium --fidelity hybrid \
        --partitions 4 --out trace.jsonl --kpis kpis.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--size", default="small", choices=["small", "medium", "large", "huge"]
    )
    parser.add_argument("--fidelity", default="packet", choices=["packet", "hybrid"])
    parser.add_argument("--partitions", type=int, default=None)
    parser.add_argument(
        "--executor",
        default=None,
        choices=["round-robin", "thread", "process"],
        help="partition executor (with --partitions); the process executor "
        "records the identical merged (t, p, s) event stream from forked "
        "worker shards",
    )
    parser.add_argument("--out", default="trace.jsonl", help="JSONL trace path")
    parser.add_argument(
        "--kpis", default=None, help="also write the canonical KPI JSON here"
    )
    args = parser.parse_args(argv)

    # build_scenario reads the fidelity from the benchmark's env knob
    os.environ["ENGINE_FIDELITY"] = args.fidelity
    import test_engine_scale as bench
    from repro.telemetry import canonical_kpi_json, verify_replay

    if args.executor is not None and args.partitions is None:
        parser.error("--executor requires --partitions")

    start = time.perf_counter()
    fw, grid, completions = bench.build_scenario(
        args.size, partitions=args.partitions, executor=args.executor
    )
    hub = fw.enable_telemetry(jsonl_path=args.out)

    all_done = fw.sim.all_of(completions)
    delivered = fw.sim.run(until=all_done, max_time=bench.MAX_VIRTUAL)
    fw.sim.run(until=max(bench.CHURN_HORIZON, fw.sim.now), max_time=bench.MAX_VIRTUAL)
    horizon = fw.sim.now
    fw.disable_telemetry()  # flushes buffers and the JSONL stream
    fw.shutdown()  # release the process executor's workers (no-op otherwise)
    wall_s = time.perf_counter() - start

    expected = len(completions) * bench.TRANSFER_BYTES
    got = sum(delivered)
    if got != expected:
        print(f"byte totals diverged: {got} != {expected}", file=sys.stderr)
        return 1

    kpis = verify_replay(hub.events, args.out, horizon=horizon)
    if args.kpis:
        Path(args.kpis).write_text(canonical_kpi_json(kpis) + "\n")

    print(
        json.dumps(
            {
                "size": args.size,
                "fidelity": args.fidelity,
                "partitions": args.partitions,
                "executor": args.executor,
                "hosts": len(grid.hosts),
                "streams": len(completions),
                "bytes_delivered": got,
                "events_recorded": len(hub.events),
                "virtual_s": round(horizon, 6),
                "wall_s": round(wall_s, 3),
                "trace": args.out,
                "replay_verified": True,
            },
            indent=2,
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
