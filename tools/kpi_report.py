#!/usr/bin/env python
"""Analyse a flight-recorder JSONL trace and print a KPI report.

The trace is a stream of flat telemetry events written by
:class:`repro.telemetry.TelemetryHub` (``jsonl_path=...``); this tool
replays it through :func:`repro.telemetry.compute_kpis` — the exact code
path a live run uses, so the numbers here are byte-identical to what the
recording process would have computed — and renders the result as a human
report or, with ``--json``, as the canonical machine-readable KPI document
CI archives next to the trace.

Usage::

    python tools/kpi_report.py trace.jsonl
    python tools/kpi_report.py trace.jsonl --json kpis.json
    python tools/kpi_report.py trace.jsonl --window 0.5 --horizon 30
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.telemetry import canonical_kpi_json, compute_kpis, read_trace  # noqa: E402


def _rate(nbytes: float) -> str:
    if nbytes >= 1e9:
        return f"{nbytes / 1e9:.2f} GB/s"
    if nbytes >= 1e6:
        return f"{nbytes / 1e6:.2f} MB/s"
    if nbytes >= 1e3:
        return f"{nbytes / 1e3:.2f} kB/s"
    return f"{nbytes:.0f} B/s"


def render_text(kpis: dict, out=sys.stdout) -> None:
    p = lambda *a: print(*a, file=out)  # noqa: E731
    p(f"horizon: {kpis['horizon']:.6f} s   events: {kpis['events_total']}")
    p("event kinds:")
    for kind, count in sorted(kpis["by_kind"].items()):
        p(f"  {kind:<18} {count}")

    fs = kpis["flow_summary"]
    p(f"\nflows: {fs['count']} ({fs['completed']} with completions)")
    if "latency_p50" in fs:
        p(
            f"  latency  p50 {fs['latency_p50'] * 1e3:9.3f} ms   "
            f"p99 {fs['latency_p99'] * 1e3:9.3f} ms"
        )
    if "goodput_p50" in fs:
        p(
            f"  goodput  p50 {_rate(fs['goodput_p50']):>12}   "
            f"p99 {_rate(fs['goodput_p99']):>12}"
        )
    for flow, rec in sorted(kpis["flows"].items()):
        done = len(rec["completions"])
        last = f"last at {rec['completions'][-1]:.6f}s" if done else "no completions"
        p(f"  {flow:<16} {rec['bytes']:>12} B delivered  {done:>3} sends done  {last}")

    p("\nlinks:")
    for net, rec in sorted(kpis["links"].items()):
        p(
            f"  {net:<16} {rec['frames']:>6} frames  {rec['bytes']:>12} B  "
            f"util {rec['utilization'] * 100:6.2f}%  losses {rec['losses']}"
        )

    if kpis["availability"]:
        p("\navailability (churn targets):")
        for target, rec in sorted(kpis["availability"].items()):
            p(
                f"  {target:<16} {rec['faults']} faults  down {rec['down_s']:.3f}s  "
                f"availability {rec['availability'] * 100:.2f}%"
            )

    if kpis["migrations"] or kpis["dwell_vetoes"]:
        p("\nadaptive routing:")
        for session, rec in sorted(kpis["migrations"].items()):
            p(f"  session {session}: {rec['count']} migrations")
        for session, count in sorted(kpis["dwell_vetoes"].items()):
            p(f"  session {session}: {count} dwell vetoes")

    mon = kpis["monitor"]
    if any(mon.values()):
        p(
            f"\nmonitoring: {mon['pushes']} pushes, "
            f"{mon['link_down']} link-down, {mon['link_up']} link-up"
        )

    fl = kpis["fluid"]
    if fl["activations"] or fl["packet_rounds"]:
        p(
            f"\nfluid fast path: {fl['activations']} activations, "
            f"{fl['epochs']} epochs ({fl['epoch_rounds']} rounds), "
            f"{fl['rollbacks']} rollbacks ({fl['rounds_undone']} rounds undone), "
            f"{fl['packet_rounds']} packet rounds"
        )

    if kpis["engine"]:
        p("\nengine (per shard):")
        for shard, cell in sorted(kpis["engine"].items(), key=lambda kv: int(kv[0])):
            p(
                f"  shard {shard}: {cell['events']} events, {cell['timers']} timers, "
                f"{cell['cancels']} cancels, peak pending {cell['peak_pending']}"
            )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="JSONL trace written by TelemetryHub")
    parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="write the canonical KPI JSON to PATH (or stdout with no value) "
        "instead of the text report",
    )
    parser.add_argument(
        "--window", type=float, default=None, help="utilization-curve bucket width (s)"
    )
    parser.add_argument(
        "--horizon",
        type=float,
        default=None,
        help="analysis horizon (s); defaults to the last event time",
    )
    args = parser.parse_args(argv)

    events = read_trace(args.trace)
    kpis = compute_kpis(events, curve_window=args.window, horizon=args.horizon)

    if args.json is not None:
        doc = canonical_kpi_json(kpis)
        if args.json == "-":
            print(doc)
        else:
            Path(args.json).write_text(doc + "\n")
            print(f"wrote {args.json} ({len(doc)} bytes)", file=sys.stderr)
    else:
        render_text(kpis)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
