"""Offline approximation of the CI lint gate (ruff's F-rule family).

The execution environment this repository is developed in has no network
access and no ruff wheel, while CI runs the real ``ruff check``.  This
script approximates the high-signal pyflakes-family rules with the stdlib
``ast`` module so the tree can be swept before pushing:

* F401 — imports never referenced in the module (``__all__``-aware,
  ``TYPE_CHECKING``-block aware, re-export-by-``as``-aware);
* F841 — local variables assigned once and never read (simple names only,
  underscore-prefixed dummies excluded, augmented/annotated/unpacking
  targets excluded — mirroring ruff's default scoping);
* E9 — files that do not compile.

Usage: ``python tools/lint_offline.py [paths...]`` (defaults to
``src tests benchmarks examples tools``).  Exits non-zero on findings.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path


def _names_loaded(tree: ast.AST) -> set:
    loaded = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            loaded.add(node.id)
        elif isinstance(node, ast.Attribute):
            root = node
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name):
                loaded.add(root.id)
    return loaded


def _annotation_string_names(tree: ast.AST) -> set:
    """Names referenced inside *quoted* annotations (ruff parses those)."""
    out = set()
    annotations = []
    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign):
            annotations.append(node.annotation)
        elif isinstance(node, ast.arg) and node.annotation is not None:
            annotations.append(node.annotation)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node.returns:
            annotations.append(node.returns)
    for annotation in annotations:
        for sub in ast.walk(annotation):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                try:
                    expr = ast.parse(sub.value, mode="eval")
                except SyntaxError:
                    continue
                out |= _names_loaded(expr)
    return out


def _exported(tree: ast.Module) -> set:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    try:
                        return set(ast.literal_eval(node.value))
                    except ValueError:
                        return set()
    return set()


def check_unused_imports(path: Path, tree: ast.Module, source: str) -> list:
    findings = []
    exported = _exported(tree)
    loaded = _names_loaded(tree) | _annotation_string_names(tree)
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        if isinstance(node, ast.ImportFrom) and node.module == "__future__":
            continue
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name.split(".")[0]
            explicit_reexport = alias.asname is not None and alias.asname == alias.name
            if bound in exported or explicit_reexport:
                continue
            if bound not in loaded:
                findings.append((path, node.lineno, f"F401 unused import {bound!r}"))
    return findings


class _FunctionVisitor(ast.NodeVisitor):
    def __init__(self, path: Path, findings: list):
        self.path = path
        self.findings = findings

    def visit_FunctionDef(self, node):  # noqa: N802 - ast API
        self._check(node)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def _check(self, fn) -> None:
        # ruff's F841 default scope: simple `name = ...` statements only —
        # no unpacking, no loop/with targets, no augmented assignments.
        assigned = {}
        read = set()
        has_nested_scope = False
        for node in ast.walk(fn):
            if node is fn:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                has_nested_scope = True
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    assigned.setdefault(target.id, node.lineno)
            if isinstance(node, ast.Name) and not isinstance(node.ctx, ast.Store):
                read.add(node.id)
            elif isinstance(node, ast.Attribute):
                root = node
                while isinstance(root, ast.Attribute):
                    root = root.value
                if isinstance(root, ast.Name):
                    read.add(root.id)
        if has_nested_scope:
            # closures may read anything; mirroring ruff's conservatism
            return
        for name, lineno in assigned.items():
            if name.startswith("_") or name in read:
                continue
            self.findings.append(
                (self.path, lineno, f"F841 local variable {name!r} assigned but never used")
            )


def check_file(path: Path) -> list:
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [(path, exc.lineno or 0, f"E9 syntax error: {exc.msg}")]
    findings = check_unused_imports(path, tree, source)
    _FunctionVisitor(path, findings).visit(tree)
    lines = source.splitlines()
    return [
        (p, lineno, message)
        for p, lineno, message in findings
        if lineno < 1 or lineno > len(lines) or "# noqa" not in lines[lineno - 1]
    ]


def main(argv: list) -> int:
    roots = [Path(p) for p in (argv or ["src", "tests", "benchmarks", "examples", "tools"])]
    findings = []
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in files:
            findings.extend(check_file(path))
    for path, lineno, message in findings:
        print(f"{path}:{lineno}: {message}")
    print(f"{len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
