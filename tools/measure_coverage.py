"""Measure tier-1 line coverage of ``src/repro`` without coverage.py.

CI runs the real thing (``coverage run -m pytest tests`` + ``coverage
report --fail-under=N``); this script exists because the offline
development environment has no coverage wheel, yet the CI threshold must
be *measured*, not aspirational.  It approximates coverage.py's line
metric with the stdlib:

* executable lines per module come from the compiled code objects
  (``co_lines`` over the full nesting), the same source of truth
  coverage.py uses;
* executed lines are collected by a ``sys.settrace`` hook that keeps
  per-frame tracing enabled only for files under ``src/repro``.

Usage: ``PYTHONPATH=src python tools/measure_coverage.py [pytest-args...]``
(defaults to ``tests -q``).  Prints per-package and total percentages;
use the total (minus a small tooling-drift margin) as the CI
``--fail-under`` threshold.
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
PREFIX = str(SRC / "repro")


def executable_lines(path: Path) -> set:
    try:
        code = compile(path.read_text(), str(path), "exec")
    except SyntaxError:
        return set()
    lines = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        lines.update(line for _, _, line in obj.co_lines() if line is not None)
        for const in obj.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    # module docstrings count as executable but never "execute" under
    # settrace once the module is cached; coverage.py excludes them too
    return lines


def main(argv: list) -> int:
    executed: dict = {}

    def tracer(frame, event, arg):
        filename = frame.f_code.co_filename
        if not filename.startswith(PREFIX):
            return None
        lines = executed.setdefault(filename, set())

        def local(frame, event, arg):
            if event == "line":
                lines.add(frame.f_lineno)
            return local

        if event == "line":
            lines.add(frame.f_lineno)
        return local

    import pytest

    sys.settrace(tracer)
    try:
        exit_code = pytest.main(argv or ["tests", "-q", "-p", "no:cacheprovider"])
    finally:
        sys.settrace(None)
    if exit_code != 0:
        print(f"pytest failed with {exit_code}; coverage numbers are meaningless")
        return int(exit_code)

    total_exec, total_hit = 0, 0
    per_package: dict = {}
    for path in sorted((SRC / "repro").rglob("*.py")):
        stmts = executable_lines(path)
        hits = executed.get(str(path), set()) & stmts
        package = path.relative_to(SRC / "repro").parts[0]
        acc = per_package.setdefault(package, [0, 0])
        acc[0] += len(stmts)
        acc[1] += len(hits)
        total_exec += len(stmts)
        total_hit += len(hits)
    print()
    for package, (stmts, hits) in sorted(per_package.items()):
        pct = 100.0 * hits / stmts if stmts else 100.0
        print(f"{package:20s} {hits:6d}/{stmts:<6d} {pct:6.1f}%")
    pct = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(f"{'TOTAL':20s} {total_hit:6d}/{total_exec:<6d} {pct:6.1f}%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
