#!/usr/bin/env python
"""Profile the engine-scale benchmark scenarios and report hot spots.

Runs one deployment scenario (packet fidelity via the classic VLink
workload, or the fluid bulk-stream workload at either fidelity) under
:mod:`cProfile` and prints the top functions by cumulative time.  The
``--json`` flag writes a machine-readable artifact so CI can archive a
nightly profile next to the benchmark numbers and regressions can be
diffed function-by-function instead of re-measured from scratch.

Usage::

    python tools/profile_hotspots.py --size medium --fidelity hybrid
    python tools/profile_hotspots.py --size large --fidelity packet \
        --workload fluid --top 40 --json profile.json

The tool lives outside pytest on purpose: profiling overhead would
poison the recorded baselines, so the benchmark suite measures clean
walls and this script owns the instrumented runs.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import pstats
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))


def _run(size: str, workload: str, fidelity: str) -> dict:
    import test_engine_scale as bench

    if workload == "deployment":
        import os

        os.environ["ENGINE_FIDELITY"] = fidelity
        return bench.run_scenario(size)
    result, _finish_times = bench.run_fluid_scenario(size, fidelity)
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", default="medium", choices=["small", "medium", "large"])
    parser.add_argument(
        "--workload",
        default="fluid",
        choices=["deployment", "fluid"],
        help="deployment = chunked VLink streams + churn; fluid = bulk TCP streams",
    )
    parser.add_argument("--fidelity", default="hybrid", choices=["packet", "hybrid"])
    parser.add_argument("--top", type=int, default=30, help="functions to print")
    parser.add_argument(
        "--sort", default="cumulative", choices=["cumulative", "tottime", "ncalls"]
    )
    parser.add_argument("--json", metavar="PATH", help="write a JSON artifact here")
    args = parser.parse_args(argv)

    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = _run(args.size, args.workload, args.fidelity)
    profiler.disable()
    wall = time.perf_counter() - start

    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort)
    text = io.StringIO()
    stats.stream = text
    stats.print_stats(args.top)
    print(text.getvalue())

    if args.json:
        rows = []
        for (filename, lineno, funcname), (cc, nc, tt, ct, _callers) in sorted(
            stats.stats.items(), key=lambda item: item[1][3], reverse=True
        )[: args.top]:
            try:
                filename = str(Path(filename).resolve().relative_to(REPO))
            except ValueError:
                pass
            rows.append(
                {
                    "function": funcname,
                    "file": filename,
                    "line": lineno,
                    "ncalls": nc,
                    "primitive_calls": cc,
                    "tottime_s": round(tt, 6),
                    "cumtime_s": round(ct, 6),
                }
            )
        artifact = {
            "size": args.size,
            "workload": args.workload,
            "fidelity": args.fidelity,
            "profiled_wall_s": round(wall, 3),
            "sort": args.sort,
            "result": result,
            "hotspots": rows,
        }
        Path(args.json).write_text(json.dumps(artifact, indent=1) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
