#!/usr/bin/env python
"""Profile the engine-scale benchmark scenarios and report hot spots.

Runs one deployment scenario (packet fidelity via the classic VLink
workload, or the fluid bulk-stream workload at either fidelity) under
:mod:`cProfile` and prints the top functions by cumulative time.  The
``--json`` flag writes a machine-readable artifact so CI can archive a
nightly profile next to the benchmark numbers and regressions can be
diffed function-by-function instead of re-measured from scratch.

Usage::

    python tools/profile_hotspots.py --size medium --fidelity hybrid
    python tools/profile_hotspots.py --size large --fidelity packet \
        --workload fluid --top 40 --json profile.json

The tool lives outside pytest on purpose: profiling overhead would
poison the recorded baselines, so the benchmark suite measures clean
walls and this script owns the instrumented runs.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import pstats
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))


def _run(size: str, workload: str, fidelity: str) -> dict:
    import test_engine_scale as bench

    if workload == "deployment":
        import os

        os.environ["ENGINE_FIDELITY"] = fidelity
        return bench.run_scenario(size)
    result, _finish_times = bench.run_fluid_scenario(size, fidelity)
    return result


class _ShardProfile:
    """Adapter making a worker-shipped raw ``cProfile`` stats dict loadable
    by :class:`pstats.Stats` (which wants a profiler-shaped object)."""

    def __init__(self, stats: dict) -> None:
        self.stats = stats

    def create_stats(self) -> None:
        pass


def _rows(stats: pstats.Stats, top: int) -> list:
    rows = []
    for (filename, lineno, funcname), (cc, nc, tt, ct, _callers) in sorted(
        stats.stats.items(), key=lambda item: item[1][3], reverse=True
    )[:top]:
        try:
            filename = str(Path(filename).resolve().relative_to(REPO))
        except ValueError:
            pass
        rows.append(
            {
                "function": funcname,
                "file": filename,
                "line": lineno,
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime_s": round(tt, 6),
                "cumtime_s": round(ct, 6),
            }
        )
    return rows


def _print_stats(stats: pstats.Stats, sort: str, top: int) -> None:
    stats.sort_stats(sort)
    text = io.StringIO()
    stats.stream = text
    stats.print_stats(top)
    print(text.getvalue())


def _per_shard(args) -> int:
    """Per-worker profiling of the partitioned deployment scenario on the
    process executor: each forked worker runs ``cProfile`` around its own
    shard windows, the parent gathers the raw stats over the pipes and
    renders one hotspot table per partition — the view that shows shard
    imbalance (one hot partition) where a merged profile would not."""
    import os

    import test_engine_scale as bench

    os.environ["ENGINE_FIDELITY"] = args.fidelity
    start = time.perf_counter()
    fw, _grid, completions = bench.build_scenario(
        args.size, partitions=args.partitions, executor="process"
    )
    fw.sim.begin_profile()
    all_done = fw.sim.all_of(completions)
    delivered = fw.sim.run(until=all_done, max_time=bench.MAX_VIRTUAL)
    fw.sim.run(until=max(bench.CHURN_HORIZON, fw.sim.now), max_time=bench.MAX_VIRTUAL)
    profiles = fw.sim.end_profile()
    fw.shutdown()
    wall = time.perf_counter() - start

    shards = []
    for p, raw in enumerate(profiles or []):
        print(f"=== partition {p} (worker process {p}) ===")
        if not raw:
            print("no samples (shard never ran)\n")
            shards.append({"partition": p, "hotspots": []})
            continue
        stats = pstats.Stats(_ShardProfile(raw))
        _print_stats(stats, args.sort, args.top)
        shards.append({"partition": p, "hotspots": _rows(stats, args.top)})

    if args.json:
        artifact = {
            "size": args.size,
            "workload": "deployment",
            "fidelity": args.fidelity,
            "partitions": args.partitions,
            "executor": "process",
            "profiled_wall_s": round(wall, 3),
            "bytes_delivered": sum(delivered),
            "sort": args.sort,
            "shards": shards,
        }
        Path(args.json).write_text(json.dumps(artifact, indent=1) + "\n")
        print(f"wrote {args.json}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--size", default="medium", choices=["small", "medium", "large", "huge"]
    )
    parser.add_argument(
        "--workload",
        default="fluid",
        choices=["deployment", "fluid"],
        help="deployment = chunked VLink streams + churn; fluid = bulk TCP streams",
    )
    parser.add_argument("--fidelity", default="hybrid", choices=["packet", "hybrid"])
    parser.add_argument("--top", type=int, default=30, help="functions to print")
    parser.add_argument(
        "--sort", default="cumulative", choices=["cumulative", "tottime", "ncalls"]
    )
    parser.add_argument("--json", metavar="PATH", help="write a JSON artifact here")
    parser.add_argument(
        "--per-shard",
        action="store_true",
        help="profile the deployment workload per partition on the process "
        "executor (one cProfile inside each forked worker)",
    )
    parser.add_argument(
        "--partitions",
        type=int,
        default=2,
        help="partition count for --per-shard (default 2)",
    )
    args = parser.parse_args(argv)

    if args.per_shard:
        return _per_shard(args)

    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = _run(args.size, args.workload, args.fidelity)
    profiler.disable()
    wall = time.perf_counter() - start

    stats = pstats.Stats(profiler)
    _print_stats(stats, args.sort, args.top)

    if args.json:
        artifact = {
            "size": args.size,
            "workload": args.workload,
            "fidelity": args.fidelity,
            "profiled_wall_s": round(wall, 3),
            "sort": args.sort,
            "result": result,
            "hotspots": _rows(stats, args.top),
        }
        Path(args.json).write_text(json.dumps(artifact, indent=1) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
